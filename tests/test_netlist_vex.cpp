// VEX core tests: structural invariants (stage/unit tagging, pipeline
// registers, breakdown shape) and instruction-level functional tests run
// through the gate-level simulator — add/forwarding/store semantics.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "netlist/vex.hpp"
#include "sim/simulator.hpp"
#include "sim/stimulus.hpp"

namespace vipvt {
namespace {

class VexTb {
 public:
  explicit VexTb(const VexConfig& cfg)
      : cfg_(cfg), design_("vex_tb", lib_) {
    ports_ = build_vex_core(design_, cfg);
    design_.check();
    sim_ = std::make_unique<LogicSimulator>(design_);
    stim_ = std::make_unique<FirStimulus>(design_, cfg);
  }

  Design& design() { return design_; }
  LogicSimulator& sim() { return *sim_; }
  const VexPorts& ports() const { return ports_; }

  /// Issue one bundle (slot 0 = `w0`, rest NOPs) and advance a cycle.
  void issue(std::uint32_t w0) {
    const auto nop = stim_->encode(VexOp::Nop, 0, 0, 0, 0);
    for (int s = 0; s < cfg_.slots; ++s) {
      apply_syllable(s, s == 0 ? w0 : nop);
    }
    sim_->step();
  }

  std::uint32_t encode(VexOp op, int d, int s1, int s2, std::uint32_t imm) {
    return stim_->encode(op, d, s1, s2, imm);
  }

  std::uint64_t read(const std::vector<NetId>& bus) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.size(); ++i) {
      v |= static_cast<std::uint64_t>(sim_->value(bus[i])) << i;
    }
    return v;
  }

 private:
  void apply_syllable(int slot, std::uint32_t w) {
    const auto layout = SyllableLayout::from(cfg_);
    for (int i = 0; i < layout.syllable_bits; ++i) {
      sim_->set_input(
          sim_->input_by_name("instr[" +
                              std::to_string(slot * layout.syllable_bits + i) +
                              "]"),
          (w >> i) & 1);
    }
  }

  Library lib_ = make_st65lp_like();
  VexConfig cfg_;
  Design design_;
  VexPorts ports_;
  std::unique_ptr<LogicSimulator> sim_;
  std::unique_ptr<FirStimulus> stim_;
};

TEST(VexStructure, TinyConfigBuildsAndChecks) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  EXPECT_GT(d.num_instances(), 1000u);
  EXPECT_GT(d.num_flops(), 100u);
}

TEST(VexStructure, AllPipelineStagesPresent) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  std::array<std::size_t, kNumPipeStages> count{};
  for (const auto& inst : d.instances()) {
    ++count[static_cast<std::size_t>(inst.stage)];
  }
  EXPECT_GT(count[static_cast<std::size_t>(PipeStage::Fetch)], 0u);
  EXPECT_GT(count[static_cast<std::size_t>(PipeStage::Decode)], 0u);
  EXPECT_GT(count[static_cast<std::size_t>(PipeStage::Execute)], 0u);
  EXPECT_GT(count[static_cast<std::size_t>(PipeStage::WriteBack)], 0u);
}

TEST(VexStructure, RegisterFileDominatesArea) {
  // The paper's Table 1: the fully synthesized RF is the largest unit.
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig{});
  double rf_area = 0.0;
  const double total = d.total_area();
  for (std::size_t u = 0; u < d.unit_names().size(); ++u) {
    if (d.unit_names()[u].rfind("regfile", 0) == 0) {
      rf_area += d.unit_area(static_cast<UnitId>(u));
    }
  }
  EXPECT_GT(rf_area / total, 0.35);
  EXPECT_LT(rf_area / total, 0.75);
}

TEST(VexStructure, SyllableLayoutPartitionsWord) {
  const auto cfg = VexConfig{};
  const auto l = SyllableLayout::from(cfg);
  EXPECT_EQ(l.dest_lsb, cfg.opcode_bits);
  EXPECT_EQ(l.imm_lsb + l.imm_bits, 32);
  EXPECT_EQ(l.addr_bits, 6);  // 64 registers
}

TEST(VexFunctional, AddImmThenStoreObservesResult) {
  VexTb tb(VexConfig::tiny());
  // r1 = r0 + 5; r2 = r0 + 7; r3 = r1 + r2; store [r0+0] <- r3
  tb.issue(tb.encode(VexOp::AddImm, 1, 0, 0, 5));
  tb.issue(tb.encode(VexOp::AddImm, 2, 0, 0, 7));
  tb.issue(tb.encode(VexOp::Add, 3, 1, 2, 0));
  tb.issue(tb.encode(VexOp::Store, 0, 0, 3, 0));
  // Drain the pipeline.
  bool seen = false;
  for (int k = 0; k < 6; ++k) {
    tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
    if (tb.read({tb.ports().store_en[0]}) == 1) {
      EXPECT_EQ(tb.read(tb.ports().store_data[0]), 12u);
      seen = true;
      break;
    }
  }
  EXPECT_TRUE(seen) << "store never committed";
}

TEST(VexFunctional, BackToBackForwarding) {
  VexTb tb(VexConfig::tiny());
  // Dependent chain with no bubbles: r1=3; r1=r1+4; r1=r1+8; store r1.
  tb.issue(tb.encode(VexOp::AddImm, 1, 0, 0, 3));
  tb.issue(tb.encode(VexOp::AddImm, 1, 1, 0, 4));
  tb.issue(tb.encode(VexOp::AddImm, 1, 1, 0, 8));
  tb.issue(tb.encode(VexOp::Store, 0, 0, 1, 0));
  bool seen = false;
  for (int k = 0; k < 6; ++k) {
    tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
    if (tb.read({tb.ports().store_en[0]}) == 1) {
      EXPECT_EQ(tb.read(tb.ports().store_data[0]), 15u);
      seen = true;
      break;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(VexFunctional, XorAndShift) {
  VexTb tb(VexConfig::tiny());
  tb.issue(tb.encode(VexOp::AddImm, 1, 0, 0, 0b1100));
  tb.issue(tb.encode(VexOp::AddImm, 2, 0, 0, 0b1010));
  tb.issue(tb.encode(VexOp::Xor, 3, 1, 2, 0));       // 0b0110
  tb.issue(tb.encode(VexOp::AddImm, 4, 0, 0, 1));    // shift amount
  tb.issue(tb.encode(VexOp::Shl, 5, 3, 4, 0));       // 0b1100
  tb.issue(tb.encode(VexOp::Store, 0, 0, 5, 0));
  bool seen = false;
  for (int k = 0; k < 8; ++k) {
    tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
    if (tb.read({tb.ports().store_en[0]}) == 1) {
      EXPECT_EQ(tb.read(tb.ports().store_data[0]), 0b1100u);
      seen = true;
      break;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(VexFunctional, MulAndLoadPath) {
  VexTb tb(VexConfig::tiny());
  // Load r1 <- load_data0 (value 6); r2 = 7; r3 = r1 * r2; store r3.
  for (int i = 0; i < 8; ++i) {
    tb.sim().set_input(tb.sim().input_by_name("load_data0[" +
                                              std::to_string(i) + "]"),
                       (6 >> i) & 1);
  }
  tb.issue(tb.encode(VexOp::Load, 1, 0, 0, 0));
  tb.issue(tb.encode(VexOp::AddImm, 2, 0, 0, 7));
  tb.issue(tb.encode(VexOp::Mul, 3, 1, 2, 0));
  tb.issue(tb.encode(VexOp::Store, 0, 0, 3, 0));
  bool seen = false;
  for (int k = 0; k < 8; ++k) {
    tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
    if (tb.read({tb.ports().store_en[0]}) == 1) {
      EXPECT_EQ(tb.read(tb.ports().store_data[0]), 42u);
      seen = true;
      break;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(VexFunctional, PcAdvancesByFour) {
  VexTb tb(VexConfig::tiny());
  const std::uint64_t pc0 = tb.read(tb.ports().pc_out);
  tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
  const std::uint64_t pc1 = tb.read(tb.ports().pc_out);
  tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
  const std::uint64_t pc2 = tb.read(tb.ports().pc_out);
  EXPECT_EQ((pc1 - pc0) & 0xffu, 4u);
  EXPECT_EQ((pc2 - pc1) & 0xffu, 4u);
}

TEST(VexFunctional, BranchRedirectsPc) {
  VexTb tb(VexConfig::tiny());
  // r0 is 0 => branch condition (first operand zero) holds.
  tb.issue(tb.encode(VexOp::Branch, 0, 0, 0, 64));
  // Let the branch reach DC and redirect FE.
  tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
  tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
  tb.issue(tb.encode(VexOp::Nop, 0, 0, 0, 0));
  const std::uint64_t pc = tb.read(tb.ports().pc_out);
  // Target = PC_at_DC + 64: well above the few sequential bumps.
  EXPECT_GE(pc, 64u);
}

TEST(VexFunctional, FirStimulusRunsAndTogglesNets) {
  Library lib = make_st65lp_like();
  Design d = make_vex_design(lib, VexConfig::tiny());
  LogicSimulator sim(d);
  FirStimulus stim(d, VexConfig::tiny(), 7);
  stim.run(sim, 60);
  EXPECT_EQ(sim.cycles(), 60u);
  std::size_t active_nets = 0;
  for (NetId n = 0; n < d.num_nets(); ++n) {
    if (sim.toggles()[n] > 0) ++active_nets;
  }
  // A healthy fraction of the netlist toggles under the FIR workload.
  EXPECT_GT(active_nets, d.num_nets() / 10);
}

}  // namespace
}  // namespace vipvt
