// Unit tests for the statistics toolkit: running moments, histogramming,
// normal CDF/quantile, chi-squared machinery and the normality test that
// backs the paper's Fig. 3 fits.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vipvt {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(-4.0, 4.0, 32);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) h.add(rng.normal());
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * (h.bin_hi(b) - h.bin_lo(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, RejectsDegenerate) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-3.0), 0.00134989803163, 1e-9);
  EXPECT_NEAR(normal_cdf(5.0, 3.0, 2.0), normal_cdf(1.0), 1e-12);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(ChiSquared, SurvivalFunction) {
  // chi^2 with k dof has mean k; SF at 0 is 1.
  EXPECT_NEAR(chi_squared_sf(0.0, 5.0), 1.0, 1e-12);
  // Known value: P(X >= 3.841) ~ 0.05 for 1 dof.
  EXPECT_NEAR(chi_squared_sf(3.841458821, 1.0), 0.05, 1e-6);
  // P(X >= 18.307) ~ 0.05 for 10 dof.
  EXPECT_NEAR(chi_squared_sf(18.30703805, 10.0), 0.05, 1e-6);
  EXPECT_THROW(gamma_q(-1.0, 1.0), std::domain_error);
}

TEST(FitNormal, AcceptsGaussianData) {
  Rng rng(99);
  std::vector<double> xs;
  xs.reserve(4000);
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.normal(-0.2, 0.05));
  const NormalFit fit = fit_normal(xs, 0.95);
  EXPECT_NEAR(fit.mean, -0.2, 0.005);
  EXPECT_NEAR(fit.stddev, 0.05, 0.005);
  EXPECT_TRUE(fit.accepted) << "p=" << fit.p_value;
}

TEST(FitNormal, RejectsStronglyBimodalData) {
  Rng rng(123);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(rng.chance(0.5) ? rng.normal(-1.0, 0.1) : rng.normal(1.0, 0.1));
  }
  const NormalFit fit = fit_normal(xs, 0.95);
  EXPECT_FALSE(fit.accepted);
}

TEST(FitNormal, TinySamplesAreInconclusive) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  const NormalFit fit = fit_normal(xs);
  EXPECT_FALSE(fit.accepted);
  EXPECT_NEAR(fit.mean, 2.0, 1e-12);
}

// Edge cases hit by near-empty wafer yield bins: constant data, fewer
// samples than test bins, and NaN contamination must all return a fit
// (never throw) with sane acceptance semantics.

TEST(FitNormal, ConstantSamplesAreDegenerateNormal) {
  const std::vector<double> xs(20, 3.25);
  const NormalFit fit = fit_normal(xs);
  EXPECT_DOUBLE_EQ(fit.mean, 3.25);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
  EXPECT_TRUE(fit.accepted);  // zero-variance data is trivially normal
}

TEST(FitNormal, ConstantSamplesLargeN) {
  // Large n would normally enter the chi-squared path; zero variance
  // must still short-circuit to the degenerate acceptance.
  const std::vector<double> xs(5000, -1.5);
  const NormalFit fit = fit_normal(xs);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
  EXPECT_TRUE(fit.accepted);
  EXPECT_EQ(fit.bins_used, 0u);
}

TEST(FitNormal, FewerSamplesThanBinCount) {
  // n = 9 enters the histogram path with sqrt(n)=3 < the 6-bin floor;
  // pooling must keep the test well-formed (no throw, dof >= 1).
  std::vector<double> xs;
  Rng rng(7);
  for (int i = 0; i < 9; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const NormalFit fit = fit_normal(xs);
  EXPECT_GE(fit.dof, 1.0);
  EXPECT_GE(fit.p_value, 0.0);
  EXPECT_LE(fit.p_value, 1.0);
}

TEST(FitNormal, EmptySamplesDoNotThrow) {
  const NormalFit fit = fit_normal({});
  EXPECT_DOUBLE_EQ(fit.mean, 0.0);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
}

TEST(FitNormal, NanPropagatesWithoutThrowing) {
  std::vector<double> xs;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(1.0, 0.3));
  xs[50] = std::numeric_limits<double>::quiet_NaN();
  const NormalFit fit = fit_normal(xs);
  EXPECT_TRUE(std::isnan(fit.mean));
  EXPECT_TRUE(std::isnan(fit.stddev));
  EXPECT_FALSE(fit.accepted);
  EXPECT_DOUBLE_EQ(fit.p_value, 0.0);
}

TEST(FitNormal, InfinityPropagatesWithoutThrowing) {
  std::vector<double> xs(32, 0.5);
  xs[3] = std::numeric_limits<double>::infinity();
  const NormalFit fit = fit_normal(xs);
  EXPECT_FALSE(fit.accepted);
  EXPECT_FALSE(std::isfinite(fit.mean));
}

TEST(Percentile, InterpolatesSorted) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

// Property: chi-squared SF is monotonically decreasing in x.
class ChiSqMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ChiSqMonotone, DecreasingInX) {
  const double dof = GetParam();
  double prev = 1.0;
  for (double x = 0.0; x < 40.0; x += 0.7) {
    const double sf = chi_squared_sf(x, dof);
    EXPECT_LE(sf, prev + 1e-12);
    prev = sf;
  }
}

INSTANTIATE_TEST_SUITE_P(Dofs, ChiSqMonotone,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 10.0, 25.0));

}  // namespace
}  // namespace vipvt
