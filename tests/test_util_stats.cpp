// Unit tests for the statistics toolkit: running moments, histogramming,
// normal CDF/quantile, chi-squared machinery and the normality test that
// backs the paper's Fig. 3 fits.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vipvt {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(-4.0, 4.0, 32);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) h.add(rng.normal());
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * (h.bin_hi(b) - h.bin_lo(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, RejectsDegenerate) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-3.0), 0.00134989803163, 1e-9);
  EXPECT_NEAR(normal_cdf(5.0, 3.0, 2.0), normal_cdf(1.0), 1e-12);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(ChiSquared, SurvivalFunction) {
  // chi^2 with k dof has mean k; SF at 0 is 1.
  EXPECT_NEAR(chi_squared_sf(0.0, 5.0), 1.0, 1e-12);
  // Known value: P(X >= 3.841) ~ 0.05 for 1 dof.
  EXPECT_NEAR(chi_squared_sf(3.841458821, 1.0), 0.05, 1e-6);
  // P(X >= 18.307) ~ 0.05 for 10 dof.
  EXPECT_NEAR(chi_squared_sf(18.30703805, 10.0), 0.05, 1e-6);
  EXPECT_THROW(gamma_q(-1.0, 1.0), std::domain_error);
}

TEST(FitNormal, AcceptsGaussianData) {
  Rng rng(99);
  std::vector<double> xs;
  xs.reserve(4000);
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.normal(-0.2, 0.05));
  const NormalFit fit = fit_normal(xs, 0.95);
  EXPECT_NEAR(fit.mean, -0.2, 0.005);
  EXPECT_NEAR(fit.stddev, 0.05, 0.005);
  EXPECT_TRUE(fit.accepted) << "p=" << fit.p_value;
}

TEST(FitNormal, RejectsStronglyBimodalData) {
  Rng rng(123);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(rng.chance(0.5) ? rng.normal(-1.0, 0.1) : rng.normal(1.0, 0.1));
  }
  const NormalFit fit = fit_normal(xs, 0.95);
  EXPECT_FALSE(fit.accepted);
}

TEST(FitNormal, TinySamplesAreInconclusive) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  const NormalFit fit = fit_normal(xs);
  EXPECT_FALSE(fit.accepted);
  EXPECT_NEAR(fit.mean, 2.0, 1e-12);
}

// Edge cases hit by near-empty wafer yield bins: constant data, fewer
// samples than test bins, and NaN contamination must all return a fit
// (never throw) with sane acceptance semantics.

TEST(FitNormal, ConstantSamplesAreDegenerateNormal) {
  const std::vector<double> xs(20, 3.25);
  const NormalFit fit = fit_normal(xs);
  EXPECT_DOUBLE_EQ(fit.mean, 3.25);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
  EXPECT_TRUE(fit.accepted);  // zero-variance data is trivially normal
}

TEST(FitNormal, ConstantSamplesLargeN) {
  // Large n would normally enter the chi-squared path; zero variance
  // must still short-circuit to the degenerate acceptance.
  const std::vector<double> xs(5000, -1.5);
  const NormalFit fit = fit_normal(xs);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
  EXPECT_TRUE(fit.accepted);
  EXPECT_EQ(fit.bins_used, 0u);
}

TEST(FitNormal, FewerSamplesThanBinCount) {
  // n = 9 enters the histogram path with sqrt(n)=3 < the 6-bin floor;
  // pooling must keep the test well-formed (no throw, dof >= 1).
  std::vector<double> xs;
  Rng rng(7);
  for (int i = 0; i < 9; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const NormalFit fit = fit_normal(xs);
  EXPECT_GE(fit.dof, 1.0);
  EXPECT_GE(fit.p_value, 0.0);
  EXPECT_LE(fit.p_value, 1.0);
}

TEST(FitNormal, EmptySamplesDoNotThrow) {
  const NormalFit fit = fit_normal({});
  EXPECT_DOUBLE_EQ(fit.mean, 0.0);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
}

TEST(FitNormal, NanPropagatesWithoutThrowing) {
  std::vector<double> xs;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(1.0, 0.3));
  xs[50] = std::numeric_limits<double>::quiet_NaN();
  const NormalFit fit = fit_normal(xs);
  EXPECT_TRUE(std::isnan(fit.mean));
  EXPECT_TRUE(std::isnan(fit.stddev));
  EXPECT_FALSE(fit.accepted);
  EXPECT_DOUBLE_EQ(fit.p_value, 0.0);
}

TEST(FitNormal, InfinityPropagatesWithoutThrowing) {
  std::vector<double> xs(32, 0.5);
  xs[3] = std::numeric_limits<double>::infinity();
  const NormalFit fit = fit_normal(xs);
  EXPECT_FALSE(fit.accepted);
  EXPECT_FALSE(std::isfinite(fit.mean));
}

// ---- Welford accumulator vs batch computation (adaptive CI checks) --------
//
// The adaptive stopping rule extends RunningStats incrementally each
// round instead of re-fitting over all accumulated samples; that is only
// sound if the single-pass moments match a two-pass batch computation to
// ulp-scale accuracy, including across span-adds and merges.

TEST(RunningStats, IncrementalMatchesTwoPassBatchToUlps) {
  Rng rng(0x5eed);
  std::vector<double> xs;
  xs.reserve(10000);
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.normal(5.0, 0.01));

  // Two-pass batch reference: exact mean, then centered sum of squares.
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  const double variance = m2 / static_cast<double>(xs.size() - 1);

  // Incremental, fed in three uneven rounds via the span overload — the
  // exact shape of the adaptive per-round update.
  RunningStats rs;
  std::span<const double> all(xs);
  rs.add(all.subspan(0, 17));
  rs.add(all.subspan(17, 4000));
  rs.add(all.subspan(4017));
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean, std::abs(mean) * 1e-14);
  EXPECT_NEAR(rs.variance(), variance, variance * 1e-12);

  // Split/merge (the cross-worker shape) lands on the same moments.
  RunningStats a, b;
  a.add(all.subspan(0, 5000));
  b.add(all.subspan(5000));
  a.merge(b);
  EXPECT_NEAR(a.mean(), mean, std::abs(mean) * 1e-14);
  EXPECT_NEAR(a.variance(), variance, variance * 1e-12);
}

// ---- Student-t / chi-squared quantiles ------------------------------------

TEST(StudentT, CdfKnownValues) {
  EXPECT_NEAR(student_t_cdf(0.0, 7.0), 0.5, 1e-12);
  // t = 2.228 is the 97.5 % point at 10 dof.
  EXPECT_NEAR(student_t_cdf(2.2281388520, 10.0), 0.975, 1e-9);
  EXPECT_NEAR(student_t_cdf(-2.2281388520, 10.0), 0.025, 1e-9);
  // Heavy 1-dof (Cauchy) tail: CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
  EXPECT_THROW(student_t_cdf(1.0, 0.0), std::domain_error);
}

TEST(StudentT, QuantileKnownValues) {
  EXPECT_NEAR(student_t_quantile(0.975, 1.0), 12.7062047362, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.2281388520, 1e-9);
  EXPECT_NEAR(student_t_quantile(0.995, 5.0), 4.0321429836, 1e-8);
  EXPECT_DOUBLE_EQ(student_t_quantile(0.5, 3.0), 0.0);
  // Converges to the normal quantile as dof grows.
  EXPECT_NEAR(student_t_quantile(0.975, 1e6), normal_quantile(0.975), 1e-5);
  EXPECT_THROW(student_t_quantile(0.0, 5.0), std::domain_error);
  EXPECT_THROW(student_t_quantile(1.0, 5.0), std::domain_error);
}

TEST(StudentT, QuantileInvertsCdf) {
  for (double dof : {1.0, 2.0, 4.5, 12.0, 60.0}) {
    for (double p : {0.01, 0.1, 0.4, 0.6, 0.9, 0.975, 0.999}) {
      EXPECT_NEAR(student_t_cdf(student_t_quantile(p, dof), dof), p, 1e-9)
          << "p=" << p << " dof=" << dof;
    }
  }
}

TEST(ChiSquaredQuantile, KnownValuesAndRoundTrip) {
  EXPECT_NEAR(chi_squared_quantile(0.95, 10.0), 18.3070380533, 1e-7);
  EXPECT_NEAR(chi_squared_quantile(0.025, 10.0), 3.2469727802, 1e-8);
  EXPECT_NEAR(chi_squared_quantile(0.975, 10.0), 20.4831774486, 1e-7);
  EXPECT_NEAR(chi_squared_quantile(0.05, 1.0), 0.0039321400, 1e-10);
  for (double k : {1.0, 3.0, 9.0, 47.0}) {
    for (double p : {0.025, 0.2, 0.5, 0.8, 0.975}) {
      const double x = chi_squared_quantile(p, k);
      EXPECT_NEAR(1.0 - chi_squared_sf(x, k), p, 1e-10)
          << "p=" << p << " k=" << k;
    }
  }
  EXPECT_THROW(chi_squared_quantile(0.0, 5.0), std::domain_error);
  EXPECT_THROW(chi_squared_quantile(0.5, -1.0), std::domain_error);
}

// ---- confidence-interval helpers ------------------------------------------

TEST(ConfidenceIntervals, MatchHandComputedForms) {
  // n = 16 samples with s = 2, mean = 10 at 95 %:
  //   mean hw = t_{0.975,15} * 2 / 4, sigma interval from chi2_{15}.
  const Interval m = mean_confidence_interval(16, 10.0, 2.0, 0.95);
  const double t = student_t_quantile(0.975, 15.0);
  EXPECT_NEAR(m.half_width(), t * 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(0.5 * (m.lo + m.hi), 10.0, 1e-12);

  const Interval s = stddev_confidence_interval(16, 2.0, 0.95);
  const double chi_hi = chi_squared_quantile(0.975, 15.0);
  const double chi_lo = chi_squared_quantile(0.025, 15.0);
  EXPECT_NEAR(s.lo, 2.0 * std::sqrt(15.0 / chi_hi), 1e-12);
  EXPECT_NEAR(s.hi, 2.0 * std::sqrt(15.0 / chi_lo), 1e-12);
  EXPECT_LT(s.lo, 2.0);
  EXPECT_GT(s.hi, 2.0);
}

// Empirical coverage: resample a known normal 2000 times and count how
// often the 95 % intervals cover the true parameters.  Nominal coverage
// is exact for normal data, so the observed rate must sit inside a
// generous tolerance band around 0.95 (binomial se ~ 0.005 at 2000
// resamples; the band is +/- 4 sigma with margin, and the fixed seed
// makes the test deterministic anyway).
TEST(ConfidenceIntervals, EmpiricalCoverageNearNominal) {
  constexpr double kTrueMean = -0.25;
  constexpr double kTrueSigma = 0.04;
  constexpr int kResamples = 2000;
  constexpr int kN = 25;
  Rng rng(0xc0ffee);
  int mean_covered = 0, sigma_covered = 0;
  for (int r = 0; r < kResamples; ++r) {
    RunningStats rs;
    for (int i = 0; i < kN; ++i) rs.add(rng.normal(kTrueMean, kTrueSigma));
    const Interval m =
        mean_confidence_interval(rs.count(), rs.mean(), rs.stddev(), 0.95);
    const Interval s = stddev_confidence_interval(rs.count(), rs.stddev(), 0.95);
    if (m.lo <= kTrueMean && kTrueMean <= m.hi) ++mean_covered;
    if (s.lo <= kTrueSigma && kTrueSigma <= s.hi) ++sigma_covered;
  }
  const double mean_cov = static_cast<double>(mean_covered) / kResamples;
  const double sigma_cov = static_cast<double>(sigma_covered) / kResamples;
  EXPECT_GT(mean_cov, 0.925);
  EXPECT_LT(mean_cov, 0.975);
  EXPECT_GT(sigma_cov, 0.925);
  EXPECT_LT(sigma_cov, 0.975);
}

// Degenerate inputs mirror the fit_normal hardening: report, never throw.
TEST(ConfidenceIntervals, DegenerateInputs) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  // n < 2: nothing is known — infinite intervals, infinite half-width.
  EXPECT_EQ(mean_confidence_interval(0, 0.0, 0.0).half_width(), inf);
  EXPECT_EQ(mean_confidence_interval(1, 3.0, 0.0).half_width(), inf);
  EXPECT_EQ(stddev_confidence_interval(1, 0.0).hi, inf);
  EXPECT_EQ(stddev_confidence_interval(1, 0.0).lo, 0.0);
  // Zero variance: the degenerate-normal point interval.
  const Interval m0 = mean_confidence_interval(50, 1.5, 0.0);
  EXPECT_DOUBLE_EQ(m0.lo, 1.5);
  EXPECT_DOUBLE_EQ(m0.hi, 1.5);
  EXPECT_DOUBLE_EQ(m0.half_width(), 0.0);
  EXPECT_DOUBLE_EQ(stddev_confidence_interval(50, 0.0).half_width(), 0.0);
  // NaN moments: NaN intervals whose half-width never satisfies a
  // target comparison (the conservative direction for a stopping rule).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(mean_confidence_interval(50, nan, 1.0).half_width()));
  EXPECT_TRUE(std::isnan(mean_confidence_interval(50, 0.0, nan).half_width()));
  EXPECT_TRUE(std::isnan(stddev_confidence_interval(50, nan).half_width()));
  EXPECT_FALSE(mean_confidence_interval(50, nan, 1.0).half_width() <= 1e9);
  // Bad confidence throws (a config error, not a data condition).
  EXPECT_THROW(mean_confidence_interval(50, 0.0, 1.0, 1.0), std::domain_error);
  EXPECT_THROW(stddev_confidence_interval(50, 1.0, 0.0), std::domain_error);
}

// Interval half-widths shrink as n grows: the property the sequential
// stopping rule relies on to terminate.
TEST(ConfidenceIntervals, HalfWidthShrinksWithN) {
  double prev_m = std::numeric_limits<double>::infinity();
  double prev_s = std::numeric_limits<double>::infinity();
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u}) {
    const double m = mean_confidence_interval(n, 0.0, 1.0).half_width();
    const double s = stddev_confidence_interval(n, 1.0).half_width();
    EXPECT_LT(m, prev_m) << n;
    EXPECT_LT(s, prev_s) << n;
    prev_m = m;
    prev_s = s;
  }
}

TEST(Percentile, InterpolatesSorted) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

// Property: chi-squared SF is monotonically decreasing in x.
class ChiSqMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ChiSqMonotone, DecreasingInX) {
  const double dof = GetParam();
  double prev = 1.0;
  for (double x = 0.0; x < 40.0; x += 0.7) {
    const double sf = chi_squared_sf(x, dof);
    EXPECT_LE(sf, prev + 1e-12);
    prev = sf;
  }
}

INSTANTIATE_TEST_SUITE_P(Dofs, ChiSqMonotone,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 10.0, 25.0));

// ---- Welford merge vs single pass, cross-validated over many splits -------

TEST(RunningStats, MergeAgreesWithSinglePassForArbitrarySplits) {
  // The campaign layer leans on merge() being a faithful reduction; this
  // cross-validates Chan's pairwise update against the single-pass
  // accumulator over many random split points, with an ulp-scale
  // relative bound (merge is accurate, just not bit-invariant — that is
  // ExactMoments' job below).
  Rng rng(0x517a75);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.normal(0.8, 2.5);

  RunningStats whole;
  for (const double x : xs) whole.add(x);

  Rng splits(99);
  for (int trial = 0; trial < 32; ++trial) {
    // 1..4 random cut points -> 2..5 segments merged left to right.
    std::vector<std::size_t> cuts = {0, xs.size()};
    const int k = 1 + static_cast<int>(splits.below(4));
    for (int c = 0; c < k; ++c) cuts.push_back(splits.below(xs.size()));
    std::sort(cuts.begin(), cuts.end());

    RunningStats merged;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      RunningStats seg;
      for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) seg.add(xs[i]);
      merged.merge(seg);
    }
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * std::abs(whole.mean()));
    EXPECT_NEAR(merged.variance(), whole.variance(),
                1e-11 * whole.variance());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  }
}

// ---- ExactMoments: the partition-invariant campaign reducer ---------------

TEST(ExactMoments, MatchesRunningStatsWithinQuantizerResolution) {
  Rng rng(0xe8ac7);
  ExactMoments em;
  RunningStats rs;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.normal(5.0, 1.7);
    em.add(x);
    rs.add(x);
  }
  const double q = std::ldexp(1.0, -ExactMoments::kFracBits);
  EXPECT_EQ(em.count(), rs.count());
  EXPECT_NEAR(em.mean(), rs.mean(), q);
  EXPECT_NEAR(em.stddev(), rs.stddev(), 4.0 * q);
  EXPECT_DOUBLE_EQ(em.min(), rs.min());  // min/max are exact doubles
  EXPECT_DOUBLE_EQ(em.max(), rs.max());
}

TEST(ExactMoments, PartitionInvariantBitForBit) {
  // THE property the campaign determinism gate stands on: any partition
  // of the sample stream, merged in any order, reproduces the
  // single-pass accumulator state exactly — not approximately.
  Rng rng(0xbeef);
  std::vector<double> xs(3000);
  for (double& x : xs) x = rng.normal(-2.0, 40.0);

  ExactMoments whole;
  for (const double x : xs) whole.add(x);

  Rng splits(3);
  for (int trial = 0; trial < 24; ++trial) {
    std::vector<std::size_t> cuts = {0, xs.size()};
    for (int c = 0; c < 5; ++c) cuts.push_back(splits.below(xs.size()));
    std::sort(cuts.begin(), cuts.end());

    std::vector<ExactMoments> segs;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      ExactMoments seg;
      for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) seg.add(xs[i]);
      segs.push_back(seg);
    }
    // Merge right-to-left — the adversarial order for a tree-shaped
    // floating-point reduction; exact integers don't care.
    ExactMoments merged;
    for (auto it = segs.rbegin(); it != segs.rend(); ++it) merged.merge(*it);
    EXPECT_TRUE(merged == whole) << "trial " << trial;
    EXPECT_TRUE(merged.state() == whole.state());
  }
}

TEST(ExactMoments, StateRoundTripsBitForBit) {
  ExactMoments em;
  for (const double x : {-1e5, 0.015625, 3.141592653589793, 7.5e-7}) em.add(x);
  const ExactMoments back = ExactMoments::from_state(em.state());
  EXPECT_TRUE(back == em);
  EXPECT_EQ(back.count(), em.count());
  EXPECT_DOUBLE_EQ(back.mean(), em.mean());
  EXPECT_DOUBLE_EQ(back.variance(), em.variance());
  EXPECT_DOUBLE_EQ(back.min(), em.min());
  EXPECT_DOUBLE_EQ(back.max(), em.max());
}

TEST(ExactMoments, SaturatesAndSanitizesOutOfDomainInputs) {
  // Quantization saturates at |x| = 2^(40-kFracBits); far-out samples
  // clamp instead of overflowing, and NaN deterministically counts as 0.
  const double cap = std::ldexp(1.0, 40 - ExactMoments::kFracBits);
  ExactMoments em;
  em.add(1e300);
  em.add(-1e300);
  EXPECT_EQ(em.count(), 2u);
  EXPECT_DOUBLE_EQ(em.mean(), 0.0);  // +cap and -cap cancel exactly
  EXPECT_NEAR(em.stddev(), cap * std::numbers::sqrt2, 1e-6 * cap);

  ExactMoments nan_case;
  nan_case.add(std::numeric_limits<double>::quiet_NaN());
  nan_case.add(2.0);
  EXPECT_EQ(nan_case.count(), 2u);
  EXPECT_DOUBLE_EQ(nan_case.mean(), 1.0);
  EXPECT_DOUBLE_EQ(nan_case.min(), 0.0);
  EXPECT_DOUBLE_EQ(nan_case.max(), 2.0);
}

TEST(ExactMoments, EmptyAndSingletonEdges) {
  ExactMoments em;
  EXPECT_EQ(em.count(), 0u);
  EXPECT_EQ(em.mean(), 0.0);
  EXPECT_EQ(em.variance(), 0.0);
  em.add(4.25);
  EXPECT_DOUBLE_EQ(em.mean(), 4.25);
  EXPECT_EQ(em.variance(), 0.0);  // n-1 denominator: undefined -> 0
  ExactMoments other;
  other.merge(em);  // merge into empty copies
  EXPECT_TRUE(other == em);
  em.merge(ExactMoments{});  // merge with empty is a no-op
  EXPECT_DOUBLE_EQ(em.mean(), 4.25);
}

}  // namespace
}  // namespace vipvt
