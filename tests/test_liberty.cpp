// Library/characterization tests: physics model sanity (the paper's
// Eqs. 3-4), LUT interpolation, cell inventory and corner scaling.

#include <gtest/gtest.h>

#include "liberty/library.hpp"
#include "liberty/lut.hpp"
#include "liberty/physics.hpp"

namespace vipvt {
namespace {

TEST(Physics, VthEffDecreasesWithShorterGate) {
  CharParams cp;
  const double vth_nom = cp.vth_eff(cp.lgate_nom, cp.vdd_low);
  const double vth_short = cp.vth_eff(cp.lgate_nom * 0.9, cp.vdd_low);
  const double vth_long = cp.vth_eff(cp.lgate_nom * 1.1, cp.vdd_low);
  EXPECT_LT(vth_short, vth_nom);  // DIBL: shorter channel, lower Vth
  EXPECT_GT(vth_long, vth_nom);
  EXPECT_GT(vth_nom, 0.1);
  EXPECT_LT(vth_nom, cp.vth0);
}

TEST(Physics, HighVddSpeedsUp) {
  CharParams cp;
  const double ratio = cp.high_vdd_speed_ratio();
  // The whole methodology rests on a ~10 % boost at 1.2 V.
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.80);
  EXPECT_NEAR(ratio, 0.90, 0.04);
}

TEST(Physics, DelayGrowsSuperlinearlyWithLgate) {
  CharParams cp;
  const double d_nom = cp.delay_factor(cp.lgate_nom, cp.vdd_low);
  const double d_p5 = cp.delay_factor(cp.lgate_nom * 1.05, cp.vdd_low);
  EXPECT_DOUBLE_EQ(d_nom, 1.0);
  // Lgate^1.5 alone gives 1.076; DIBL adds more.
  EXPECT_GT(d_p5, 1.07);
  EXPECT_LT(d_p5, 1.25);
}

TEST(Physics, LeakageRisesWithVddAndShortGate) {
  CharParams cp;
  EXPECT_DOUBLE_EQ(cp.leakage_factor(cp.lgate_nom, cp.vdd_low), 1.0);
  EXPECT_GT(cp.leakage_factor(cp.lgate_nom, cp.vdd_high), 1.2);
  EXPECT_GT(cp.leakage_factor(cp.lgate_nom * 0.95, cp.vdd_low), 1.0);
  EXPECT_LT(cp.leakage_factor(cp.lgate_nom * 1.05, cp.vdd_low), 1.0);
}

TEST(Physics, DynamicScalesWithVddSquared) {
  CharParams cp;
  EXPECT_NEAR(cp.dynamic_factor(cp.vdd_high), 1.44, 1e-12);
}

TEST(Physics, RawDelayRejectsSubthresholdVdd) {
  CharParams cp;
  EXPECT_THROW(cp.raw_delay(cp.lgate_nom, 0.1), std::domain_error);
}

TEST(Lut2D, ExactAtGridPoints) {
  Lut2D lut({0.0, 1.0}, {0.0, 2.0}, {10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(lut.lookup(0.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(lut.lookup(0.0, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(lut.lookup(1.0, 0.0), 30.0);
  EXPECT_DOUBLE_EQ(lut.lookup(1.0, 2.0), 40.0);
}

TEST(Lut2D, BilinearInterior) {
  Lut2D lut({0.0, 1.0}, {0.0, 2.0}, {10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(lut.lookup(0.5, 1.0), 25.0);
}

TEST(Lut2D, LinearExtrapolation) {
  Lut2D lut({0.0, 1.0}, {0.0, 2.0}, {10.0, 20.0, 30.0, 40.0});
  // Along slew at load 0: slope 20/unit; at slew=2 expect 50.
  EXPECT_DOUBLE_EQ(lut.lookup(2.0, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(lut.lookup(-1.0, 0.0), -10.0);
}

TEST(Lut2D, RejectsBadAxes) {
  EXPECT_THROW(Lut2D({1.0, 0.0}, {0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Lut2D({0.0}, {0.0, 1.0}, {1.0}), std::invalid_argument);
}

class LibraryTest : public ::testing::Test {
 protected:
  Library lib_ = make_st65lp_like();
};

TEST_F(LibraryTest, HasCoreCells) {
  for (const char* name :
       {"INV_X1", "INV_X4", "NAND2_X1", "NOR2_X2", "XOR2_X1", "MUX2_X1",
        "MAJ3_X1", "DFF_X1", "RAZOR_DFF_X1", "LS_X1", "TIE0_X1", "TIE1_X1"}) {
    EXPECT_TRUE(lib_.try_find(name).has_value()) << name;
  }
  EXPECT_GE(lib_.num_cells(), 30u);
}

TEST_F(LibraryTest, CellForPicksSmallestDrive) {
  const Cell& inv = lib_.cell(lib_.cell_for(CellFunc::Inv));
  EXPECT_EQ(inv.drive, 1);
}

TEST_F(LibraryTest, PinConventions) {
  const Cell& mux = lib_.cell(lib_.find("MUX2_X1"));
  ASSERT_EQ(mux.pins.size(), 4u);
  EXPECT_TRUE(mux.pins[0].is_input);
  EXPECT_FALSE(mux.pins[mux.output_pin()].is_input);
  EXPECT_EQ(mux.num_inputs(), 3);

  const Cell& dff = lib_.cell(lib_.find("DFF_X1"));
  ASSERT_EQ(dff.pins.size(), 3u);
  EXPECT_EQ(dff.pins[0].name, "D");
  EXPECT_TRUE(dff.pins[1].is_clock);
  EXPECT_TRUE(dff.is_sequential());
  EXPECT_GT(dff.setup_ns, 0.0);
}

TEST_F(LibraryTest, HighCornerIsFasterAndLeakier) {
  const Cell& nand = lib_.cell(lib_.find("NAND2_X1"));
  ASSERT_FALSE(nand.arcs.empty());
  const auto& arc = nand.arcs[0];
  const double d_low = arc.corner[kVddLow].delay.lookup(0.02, 0.005);
  const double d_high = arc.corner[kVddHigh].delay.lookup(0.02, 0.005);
  EXPECT_LT(d_high, d_low);
  EXPECT_NEAR(d_high / d_low, lib_.char_params().high_vdd_speed_ratio(), 1e-9);
  EXPECT_GT(nand.leakage_mw[kVddHigh], nand.leakage_mw[kVddLow]);
  EXPECT_GT(nand.internal_energy_pj[kVddHigh], nand.internal_energy_pj[kVddLow]);
}

TEST_F(LibraryTest, DelayMonotoneInLoadAndSlew) {
  const Cell& inv = lib_.cell(lib_.find("INV_X1"));
  const auto& t = inv.arcs[0].corner[kVddLow].delay;
  double prev = -1.0;
  for (double load : {0.0005, 0.002, 0.008, 0.02}) {
    const double d = t.lookup(0.02, load);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_GT(t.lookup(0.2, 0.005), t.lookup(0.01, 0.005));
}

TEST_F(LibraryTest, BiggerDriveIsStronger) {
  const Cell& x1 = lib_.cell(lib_.find("INV_X1"));
  const Cell& x4 = lib_.cell(lib_.find("INV_X4"));
  // At heavy load the X4 wins despite larger intrinsic.
  const double heavy = 0.03;
  EXPECT_LT(x4.arcs[0].corner[kVddLow].delay.lookup(0.02, heavy),
            x1.arcs[0].corner[kVddLow].delay.lookup(0.02, heavy));
  EXPECT_GT(x4.area_um2, x1.area_um2);
}

TEST_F(LibraryTest, LevelShifterCosts) {
  const Cell& ls = lib_.cell(lib_.find("LS_X1"));
  const Cell& inv = lib_.cell(lib_.find("INV_X1"));
  EXPECT_GT(ls.area_um2, 5.0 * inv.area_um2);  // Table 2's area pressure
  EXPECT_GT(ls.leakage_mw[kVddLow], inv.leakage_mw[kVddLow]);
  EXPECT_TRUE(ls.is_level_shifter());
}

TEST_F(LibraryTest, RazorFlopCostsMoreThanDff) {
  const Cell& dff = lib_.cell(lib_.find("DFF_X1"));
  const Cell& razor = lib_.cell(lib_.find("RAZOR_DFF_X1"));
  EXPECT_GT(razor.area_um2, 1.5 * dff.area_um2);
  EXPECT_GT(razor.leakage_mw[kVddLow], dff.leakage_mw[kVddLow]);
  EXPECT_TRUE(razor.is_razor());
  EXPECT_TRUE(razor.is_sequential());
}

TEST_F(LibraryTest, DuplicateCellRejected) {
  Library lib("dup", CharParams{}, WireParams{}, SiteParams{});
  Cell c;
  c.name = "X";
  c.area_um2 = 1.0;
  c.pins.push_back({"A", true, false, 0.001});
  c.pins.push_back({"Z", false, false, 0.0});
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), std::invalid_argument);
}

TEST_F(LibraryTest, SitesDerivedFromArea) {
  const auto& site = lib_.site();
  for (const auto& cell : lib_.cells()) {
    EXPECT_GE(cell.sites * site.site_width_um * site.row_height_um,
              cell.area_um2 - 1e-9)
        << cell.name;
  }
}

}  // namespace
}  // namespace vipvt
