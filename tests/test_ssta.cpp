// Canonical-SSTA tests: Clark's max against closed forms and a 100k-
// sample empirical check, the engine's analytic stage moments against a
// Monte-Carlo reference on the tiny core, and the yield-layer triage
// wiring contracts (DESIGN.md §16) — tier accounting, bit-identical
// non-MC outputs, thread/shard invariance with triage enabled.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>
#include <vector>

#include "io/yield_writers.hpp"
#include "ssta/canonical.hpp"
#include "ssta/clark.hpp"
#include "util/rng.hpp"
#include "variation/mc_ssta.hpp"
#include "vi/flow.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

namespace vipvt {
namespace {

// ---- Clark's max: closed forms ---------------------------------------------

TEST(ClarkMax, EqualIndependentNormalsMatchClosedForm) {
  // For i.i.d. A, B ~ N(mu, s^2): E[max] = mu + s/sqrt(pi),
  // Var[max] = s^2 (1 - 1/pi).
  const double mu = 2.0, s = 0.5;
  const ClarkMax m = clark_max(mu, s * s, mu, s * s, 0.0);
  EXPECT_NEAR(m.mean, mu + s / std::sqrt(std::numbers::pi), 1e-12);
  EXPECT_NEAR(m.var, s * s * (1.0 - 1.0 / std::numbers::pi), 1e-12);
  EXPECT_NEAR(m.p, 0.5, 1e-12);
}

TEST(ClarkMax, ZeroVarianceReducesToScalarMax) {
  const ClarkMax m = clark_max(1.0, 0.0, 2.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.var, 0.0);
  EXPECT_DOUBLE_EQ(m.p, 0.0);  // b wins
}

TEST(ClarkMax, PerfectCorrelationPicksLargerMeanExactly) {
  // Equal variance, correlation 1 => theta = 0: max(A, A + 1) = A + 1,
  // so the result is exactly the larger-mean operand's distribution.
  const ClarkMax hi_b = clark_max(1.0, 0.04, 2.0, 0.04, 0.04);
  EXPECT_DOUBLE_EQ(hi_b.mean, 2.0);
  EXPECT_DOUBLE_EQ(hi_b.var, 0.04);
  EXPECT_DOUBLE_EQ(hi_b.p, 0.0);
  const ClarkMax hi_a = clark_max(2.0, 0.04, 1.0, 0.04, 0.04);
  EXPECT_DOUBLE_EQ(hi_a.mean, 2.0);
  EXPECT_DOUBLE_EQ(hi_a.var, 0.04);
  EXPECT_DOUBLE_EQ(hi_a.p, 1.0);
}

TEST(ClarkMax, DominantOperandKeepsItsMoments) {
  // B sits 50 sigma above A: max is indistinguishable from B.
  const ClarkMax m = clark_max(0.0, 1.0, 100.0, 4.0, 0.0);
  EXPECT_NEAR(m.mean, 100.0, 1e-9);
  EXPECT_NEAR(m.var, 4.0, 1e-6);
  EXPECT_NEAR(m.p, 0.0, 1e-12);
}

TEST(ClarkMax, MatchesEmpiricalMomentsAt100kSamples) {
  // General correlated case, no closed form: Clark's formulas are EXACT
  // for the first two moments of max(A, B) on jointly normal inputs, so
  // the empirical moments must agree within Monte-Carlo error.
  const double mu_a = 1.0, va = 0.04, mu_b = 1.1, vb = 0.09, cov = 0.02;
  const ClarkMax m = clark_max(mu_a, va, mu_b, vb, cov);

  // Draw (A, B) via Cholesky: A = mu_a + sa z1, B = mu_b + c1 z1 + c2 z2.
  const double sa = std::sqrt(va);
  const double c1 = cov / sa;
  const double c2 = std::sqrt(vb - c1 * c1);
  const int n = 100000;
  Rng rng(0xc1a123);
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z1 = rng.normal(), z2 = rng.normal();
    const double a = mu_a + sa * z1;
    const double b = mu_b + c1 * z1 + c2 * z2;
    const double mx = a > b ? a : b;
    sum += mx;
    sum2 += mx * mx;
  }
  const double emp_mean = sum / n;
  const double emp_var = sum2 / n - emp_mean * emp_mean;
  // 5 standard errors: se(mean) ~ sd/sqrt(n), se(var) ~ var sqrt(2/n).
  EXPECT_NEAR(m.mean, emp_mean, 5.0 * std::sqrt(m.var / n));
  EXPECT_NEAR(m.var, emp_var, 5.0 * m.var * std::sqrt(2.0 / n));
}

// ---- engine vs Monte-Carlo on the tiny core --------------------------------

FlowConfig tiny_flow_config() {
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  return cfg;
}

WaferConfig test_wafer_config() {
  WaferConfig wc;
  wc.wafer_diameter_mm = 200.0;
  return wc;
}

class SstaFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow_ = new Flow(tiny_flow_config());
    flow_->simulate_activity();
  }
  static void TearDownTestSuite() {
    delete flow_;
    flow_ = nullptr;
  }
  static Flow* flow_;
};

Flow* SstaFixture::flow_ = nullptr;

TEST_F(SstaFixture, StageMomentsTrackMonteCarloAtAllLow) {
  StaEngine engine(flow_->sta());
  engine.compute_base_all_low();
  const VariationModel& model = flow_->variation();
  const std::vector<double> systematic =
      model.systematic_lgates(flow_->design(), DieLocation::point('A'));

  const CanonicalSsta canon(flow_->design(), engine, model);
  const CanonicalResult ana = canon.run(systematic);

  McConfig mcc;
  mcc.samples = 1024;
  mcc.seed = 0x9e3779b9;
  const McResult mc = MonteCarloSsta(flow_->design(), engine, model)
                          .run_with_systematic(systematic, mcc);

  for (int s = 0; s < kNumPipeStages; ++s) {
    const auto stage = static_cast<PipeStage>(s);
    const StageGauss& g = ana.stage(stage);
    const StageSlackDist& d = mc.stage(stage);
    EXPECT_EQ(g.present, d.present) << "stage " << s;
    if (!d.present) continue;
    // Clark merges with the independent parts of reconverging paths
    // treated as uncorrelated (the documented canonical-form
    // approximation) shave sigma and push the mean pessimistic; the two
    // largely CANCEL in the 3-sigma slack, which is the only number the
    // triage verdict consumes — so that is what gets the tight bound
    // (measured model error ~0.01 ns on this core, plus the MC
    // estimate's own ~0.011 ns standard error at 1024 samples).
    EXPECT_NEAR(g.three_sigma_slack(), d.three_sigma_slack(), 0.03)
        << "stage " << s;
    // The raw moments get directional sanity bounds: mean within a few
    // hundredths pessimistic, sigma inside a broad factor of the MC fit.
    EXPECT_NEAR(g.mean_slack_ns, d.fit.mean, 0.05) << "stage " << s;
    EXPECT_LE(g.mean_slack_ns, d.fit.mean + 0.01) << "stage " << s;
    EXPECT_LE(g.sigma_ns, 1.5 * d.fit.stddev + 1e-3) << "stage " << s;
    EXPECT_GE(g.sigma_ns, 0.25 * d.fit.stddev - 1e-3) << "stage " << s;
  }
  // The analytic min-period moments back the triage fmax: the MC
  // counterpart is the min-period sample distribution.
  RunningStats mp;
  for (double v : mc.min_period_samples) mp.add(v);
  EXPECT_NEAR(ana.min_period_mean_ns, mp.mean(), 0.05);
  EXPECT_LE(mp.mean(), ana.min_period_mean_ns + 0.01);  // analytic pessimistic
  EXPECT_LE(ana.min_period_sigma_ns, 1.5 * mp.stddev() + 1e-3);
  EXPECT_GE(ana.min_period_sigma_ns, 0.25 * mp.stddev() - 1e-3);
}

TEST_F(SstaFixture, RunRejectsShortSystematicMap) {
  StaEngine engine(flow_->sta());
  engine.compute_base_all_low();
  const CanonicalSsta canon(flow_->design(), engine, flow_->variation());
  const std::vector<double> short_map(flow_->design().num_instances() - 1,
                                      45.0);
  EXPECT_THROW((void)canon.run(short_map), std::invalid_argument);
}

// ---- triage wiring (DESIGN.md §16) -----------------------------------------

YieldConfig triage_off_config() {
  YieldConfig yc;
  yc.mc.samples = 12;
  yc.seed = 0xd1e5;
  return yc;
}

/// Everything a die reports EXCEPT the MC-population fields the analytic
/// tier replaces: these must be bitwise equal with triage on or off.
std::string non_mc_fingerprint(const YieldReport& r) {
  std::ostringstream os;
  for (const DieOutcome& d : r.dies) {
    os << d.die_id << ' ' << d.detected_severity << ' ' << d.islands_raised
       << ' ' << static_cast<int>(d.policy) << ' ' << d.timing_met << ' '
       << d.escalated << ' ' << d.missed_violation << ' '
       << std::hexfloat << d.wns_all_low_ns << ' ' << d.wns_final_ns << ' '
       << d.total_mw << ' ' << d.leakage_mw << std::defaultfloat << '\n';
  }
  return os.str();
}

TEST_F(SstaFixture, TriageOffReportsOffTierEverywhere) {
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldReport r = analyzer.analyze(wafer, triage_off_config());
  EXPECT_EQ(r.triage_analytical, 0u);
  EXPECT_EQ(r.triage_mc_fallback, 0u);
  EXPECT_DOUBLE_EQ(r.triage_fraction(), 0.0);
  for (const DieOutcome& d : r.dies) {
    EXPECT_EQ(d.triage_tier, TriageTier::Off);
    EXPECT_DOUBLE_EQ(d.triage_margin_ns, 0.0);
    EXPECT_DOUBLE_EQ(d.triage_band_ns, 0.0);
  }
}

TEST_F(SstaFixture, HugeBandFallsBackToMcWithIdenticalResults) {
  // An absurd model-error allowance makes every slot undecided: every
  // die must run the unchanged MC path, so ALL result fields — including
  // the MC-derived ones — match the triage-off run exactly.
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldReport off = analyzer.analyze(wafer, triage_off_config());
  YieldConfig on_cfg = triage_off_config();
  on_cfg.triage.enabled = true;
  on_cfg.triage.model_error_ns = 1e9;
  const YieldReport on = analyzer.analyze(wafer, on_cfg);

  EXPECT_EQ(on.triage_analytical, 0u);
  EXPECT_EQ(on.triage_mc_fallback, on.dies.size());
  ASSERT_EQ(on.dies.size(), off.dies.size());
  for (std::size_t i = 0; i < on.dies.size(); ++i) {
    EXPECT_EQ(on.dies[i].triage_tier, TriageTier::McFallback);
    EXPECT_EQ(on.dies[i].mc_severity, off.dies[i].mc_severity);
    EXPECT_EQ(on.dies[i].mc_samples, off.dies[i].mc_samples);
    EXPECT_DOUBLE_EQ(on.dies[i].fmax_ghz, off.dies[i].fmax_ghz);
    EXPECT_GT(on.dies[i].triage_band_ns, 1e8);  // the band that refused
  }
  EXPECT_EQ(non_mc_fingerprint(on), non_mc_fingerprint(off));
}

TEST_F(SstaFixture, AnalyticalVerdictSkipsMcAndKeepsSiliconBits) {
  // A zero band decides every slot whose margin is strictly positive —
  // in practice all of them: every die takes the analytic verdict, skips
  // MC (mc_samples == 0), and still reports bit-identical fabrication /
  // policy / power because the RNG stream positions are preserved.
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldReport off = analyzer.analyze(wafer, triage_off_config());
  YieldConfig on_cfg = triage_off_config();
  on_cfg.triage.enabled = true;
  on_cfg.triage.band_scale = 0.0;
  on_cfg.triage.model_error_ns = 0.0;
  const YieldReport on = analyzer.analyze(wafer, on_cfg);

  EXPECT_EQ(on.triage_analytical + on.triage_mc_fallback, on.dies.size());
  EXPECT_GT(on.triage_analytical, 0u);
  EXPECT_GT(on.triage_fraction(), 0.0);
  for (const DieOutcome& d : on.dies) {
    if (d.triage_tier != TriageTier::Analytical) continue;
    EXPECT_EQ(d.mc_samples, 0);
    EXPECT_EQ(d.mc_stop, McStop::FixedBudget);
    EXPECT_GT(d.fmax_ghz, 0.0);
    EXPECT_GT(d.triage_margin_ns, d.triage_band_ns);
  }
  EXPECT_EQ(non_mc_fingerprint(on), non_mc_fingerprint(off));
}

TEST_F(SstaFixture, TriagedReportBitIdenticalAcrossThreadCounts) {
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  YieldConfig cfg = triage_off_config();
  cfg.triage.enabled = true;
  const auto serialize = [&](const YieldReport& r) {
    std::ostringstream os;
    write_yield_csv(os, wafer, r);
    write_yield_json(os, r);
    return os.str();
  };
  ThreadPool four(4);
  const std::string serial_txt = serialize(analyzer.analyze(wafer, cfg));
  EXPECT_EQ(serialize(analyzer.analyze(wafer, cfg, &four)), serial_txt);
}

TEST_F(SstaFixture, ShardsWithoutSharedScreenReproduceTheWaferRun) {
  // A shard given no screen (and no slot maps) must recompute both and
  // land on the same bits as the full analyze() run — the partition-
  // invariance contract the campaign layer leans on.
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  YieldConfig cfg = triage_off_config();
  cfg.triage.enabled = true;
  const YieldReport full = analyzer.analyze(wafer, cfg);

  StaEngine engine(flow_->sta());
  CompensationController ctrl(flow_->design(), engine, flow_->variation(),
                              flow_->island_plan(), flow_->razor_plan());
  const std::size_t mid = wafer.num_dies() / 2;
  YieldAggregate agg = analyzer.analyze_shard(engine, ctrl, wafer, cfg, 0, mid);
  agg.merge(
      analyzer.analyze_shard(engine, ctrl, wafer, cfg, mid, wafer.num_dies()));

  EXPECT_EQ(agg.dies, full.dies.size());
  EXPECT_EQ(agg.triage_analytical, full.triage_analytical);
  EXPECT_EQ(agg.triage_mc_fallback, full.triage_mc_fallback);
  EXPECT_EQ(agg.shipped_dies(), full.shipped_dies());
  EXPECT_EQ(agg.mc_samples_drawn, full.mc_samples_drawn);
}

TEST_F(SstaFixture, SingleDiePathMatchesWaferPath) {
  const WaferModel wafer(test_wafer_config());
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  YieldConfig cfg = triage_off_config();
  cfg.triage.enabled = true;
  const YieldReport full = analyzer.analyze(wafer, cfg);
  StaEngine engine(flow_->sta());
  const DieOutcome solo = analyzer.analyze_die(engine, wafer.dies()[0], cfg);
  EXPECT_EQ(solo.triage_tier, full.dies[0].triage_tier);
  EXPECT_EQ(solo.mc_severity, full.dies[0].mc_severity);
  EXPECT_EQ(solo.mc_samples, full.dies[0].mc_samples);
  EXPECT_DOUBLE_EQ(solo.fmax_ghz, full.dies[0].fmax_ghz);
  EXPECT_DOUBLE_EQ(solo.triage_margin_ns, full.dies[0].triage_margin_ns);
  EXPECT_DOUBLE_EQ(solo.triage_band_ns, full.dies[0].triage_band_ns);
  EXPECT_DOUBLE_EQ(solo.total_mw, full.dies[0].total_mw);
}

}  // namespace
}  // namespace vipvt
