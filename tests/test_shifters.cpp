// Level-shifter insertion tests: completeness (every low->high crossing
// shifted), direction rule (high->low needs none), functional
// transparency, incremental-placement legality and overhead accounting.

#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.hpp"
#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "sim/stimulus.hpp"
#include "timing/sta.hpp"
#include "vi/shifters.hpp"

namespace vipvt {
namespace {

/// A 3-island plan over a manually domain-tagged design.
IslandPlan three_island_plan() {
  IslandPlan plan;
  plan.dir = SliceDir::Vertical;
  plan.cuts = {10.0, 20.0, 30.0};
  plan.cell_count = {0, 0, 0};
  plan.feasible = {true, true, true};
  return plan;
}

class ShifterFixture : public ::testing::Test {
 protected:
  ShifterFixture() : design_(make_vex_design(lib_, VexConfig::tiny())) {
    // The artificial thirds partition below produces far more crossings
    // per cell than a real slice plan; give the tiny die extra
    // whitespace so every shifter can be placed.
    FloorplanConfig fpc;
    fpc.target_utilization = 0.50;
    fp_ = std::make_unique<Floorplan>(Floorplan::for_design(design_, fpc));
    db_ = std::make_unique<PlacementDb>(*fp_);
    place_design(design_, *fp_, PlacerConfig{}, *db_);
    // Vertical thirds: left third = island 1, middle = island 2.
    const Rect& die = fp_->die();
    for (InstId i = 0; i < design_.num_instances(); ++i) {
      const double frac =
          (design_.instance(i).pos.x - die.lo.x) / die.width();
      design_.instance(i).domain =
          frac < 0.33 ? 1 : (frac < 0.66 ? 2 : kDomainBase);
    }
  }

  Library lib_ = make_st65lp_like();
  Design design_;
  std::unique_ptr<Floorplan> fp_;
  std::unique_ptr<PlacementDb> db_;
};

TEST_F(ShifterFixture, EveryUpCrossingShifted) {
  const IslandPlan plan = three_island_plan();
  const ShifterReport rep = insert_level_shifters(design_, *db_, plan);
  EXPECT_GT(rep.inserted, 0u);
  design_.check();

  // Post-condition: no net crosses from a lower-rank driver domain to a
  // higher-rank sink domain without a level shifter in between.
  for (NetId n = 0; n < design_.num_nets(); ++n) {
    const Net& net = design_.net(n);
    if (net.is_clock) continue;  // ideal clock: handled by the clock tree
    const int drv_rank =
        net.has_cell_driver()
            ? plan.domain_rank(design_.instance(net.driver.inst).domain)
            : 0;
    const bool drv_is_ls =
        net.has_cell_driver() &&
        design_.cell_of(net.driver.inst).is_level_shifter();
    for (const auto& sink : net.sinks) {
      // Level shifters themselves legitimately sit on the low side of a
      // crossing (their input is the low-domain net).
      if (design_.cell_of(sink.inst).is_level_shifter()) continue;
      const int sink_rank =
          plan.domain_rank(design_.instance(sink.inst).domain);
      if (sink_rank > drv_rank) {
        EXPECT_TRUE(drv_is_ls)
            << "unshifted crossing on net " << net.name;
      }
    }
  }
}

TEST_F(ShifterFixture, ShiftersAreWellFormed) {
  const IslandPlan plan = three_island_plan();
  const ShifterReport rep = insert_level_shifters(design_, *db_, plan);
  std::size_t found = 0;
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    const Cell& cell = design_.cell_of(i);
    if (!cell.is_level_shifter()) continue;
    ++found;
    const Instance& inst = design_.instance(i);
    EXPECT_TRUE(inst.placed);
    EXPECT_TRUE(fp_->die().contains(inst.pos));
    // Powered by the receiving (higher-rank) domain.
    const Net& out = design_.net(inst.conns[1]);
    for (const auto& sink : out.sinks) {
      EXPECT_EQ(design_.instance(sink.inst).domain, inst.domain);
    }
  }
  EXPECT_EQ(found, rep.inserted);
  double ls_area = 0.0;
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    if (design_.cell_of(i).is_level_shifter()) {
      ls_area += design_.cell_of(i).area_um2;
    }
  }
  EXPECT_NEAR(rep.area_um2, ls_area, 1e-6);
  EXPECT_GT(rep.area_fraction, 0.0);
}

TEST_F(ShifterFixture, NoDownCrossingShifters) {
  // Make the whole design one island except a high-rank stripe; nets
  // from island 1 (high rank) into base must NOT get shifters.
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    design_.instance(i).domain = kDomainBase;
  }
  // Tag EX cells as island 1 (raised first).
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    if (design_.instance(i).stage == PipeStage::Execute) {
      design_.instance(i).domain = 1;
    }
  }
  IslandPlan plan;
  plan.dir = SliceDir::Vertical;
  plan.cuts = {5.0};
  plan.cell_count = {0};
  plan.feasible = {true};
  const ShifterReport rep = insert_level_shifters(design_, *db_, plan);
  // Every inserted shifter feeds island-1 sinks only.
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    if (!design_.cell_of(i).is_level_shifter()) continue;
    EXPECT_EQ(design_.instance(i).domain, 1);
  }
  EXPECT_GT(rep.inserted, 0u);
}

TEST_F(ShifterFixture, FunctionPreservedAfterInsertion) {
  // Same FIR run before and after insertion must produce identical flop
  // states: shifters are logic buffers.
  LogicSimulator before(design_);
  FirStimulus stim_b(design_, VexConfig::tiny(), 11);
  stim_b.run(before, 60);
  std::vector<bool> flop_values;
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    const Cell& c = design_.cell_of(i);
    if (c.is_sequential()) {
      flop_values.push_back(before.value(design_.instance(i).conns[2]));
    }
  }

  const IslandPlan plan = three_island_plan();
  insert_level_shifters(design_, *db_, plan);
  design_.check();
  LogicSimulator after(design_);
  FirStimulus stim_a(design_, VexConfig::tiny(), 11);
  stim_a.run(after, 60);
  std::size_t k = 0;
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    const Cell& c = design_.cell_of(i);
    if (!c.is_sequential()) continue;
    ASSERT_LT(k, flop_values.size());
    EXPECT_EQ(after.value(design_.instance(i).conns[2]), flop_values[k])
        << design_.instance(i).name;
    ++k;
  }
}

TEST_F(ShifterFixture, InsertionDegradesTiming) {
  StaEngine before(design_, StaOptions{});
  const double t_before = before.min_period();
  const IslandPlan plan = three_island_plan();
  insert_level_shifters(design_, *db_, plan);
  StaEngine after(design_, StaOptions{});
  const double t_after = after.min_period();
  // Level shifters on crossing paths cost delay (the paper's 8-15 %).
  EXPECT_GT(t_after, t_before);
  EXPECT_LT(t_after, 1.5 * t_before);
}

TEST_F(ShifterFixture, UniformDomainNeedsNoShifters) {
  for (InstId i = 0; i < design_.num_instances(); ++i) {
    design_.instance(i).domain = kDomainBase;
  }
  IslandPlan plan;
  plan.cuts = {1.0};
  plan.cell_count = {0};
  plan.feasible = {true};
  const ShifterReport rep = insert_level_shifters(design_, *db_, plan);
  EXPECT_EQ(rep.inserted, 0u);
  EXPECT_EQ(rep.crossing_nets, 0u);
}

}  // namespace
}  // namespace vipvt
