// Functional verification of the datapath generators: every block is
// built as a tiny combinational design and simulated exhaustively (or on
// dense sweeps) against a software reference model.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "netlist/builder.hpp"
#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace vipvt {
namespace {

/// Combinational testbench harness: builds a design with input buses and
/// evaluates output buses through the logic simulator.
class CombTb {
 public:
  CombTb() : design_("tb", lib_), builder_(design_) {}

  NetlistBuilder& b() { return builder_; }
  Design& design() { return design_; }

  Bus in(const std::string& name, int width) {
    return builder_.input_bus(name, width);
  }

  void finish(const Bus& out) {
    builder_.output(out);
    design_.check();
    sim_ = std::make_unique<LogicSimulator>(design_);
  }

  void set(const Bus& bus, std::uint64_t value) {
    for (std::size_t i = 0; i < bus.size(); ++i) {
      sim_->set_input(bus[i], (value >> i) & 1);
    }
  }

  std::uint64_t eval(const Bus& out) {
    sim_->step();
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      v |= static_cast<std::uint64_t>(sim_->value(out[i])) << i;
    }
    return v;
  }

 private:
  Library lib_ = make_st65lp_like();
  Design design_;
  NetlistBuilder builder_;
  std::unique_ptr<LogicSimulator> sim_;
};

TEST(RippleAdder, Exhaustive4Bit) {
  CombTb tb;
  Bus a = tb.in("a", 4), b = tb.in("b", 4);
  const NetId cin = tb.b().input("cin");
  auto add = ripple_adder(tb.b(), a, b, cin);
  Bus out = add.sum;
  out.push_back(add.cout);
  tb.finish(out);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      for (std::uint64_t c = 0; c < 2; ++c) {
        tb.set(a, x);
        tb.set(b, y);
        tb.set({cin}, c);
        EXPECT_EQ(tb.eval(out), x + y + c) << x << "+" << y << "+" << c;
      }
    }
  }
}

TEST(ClaAdder, Exhaustive5BitCrossGroup) {
  CombTb tb;  // 5 bits spans a 4-bit group boundary
  Bus a = tb.in("a", 5), b = tb.in("b", 5);
  const NetId cin = tb.b().input("cin");
  auto add = cla_adder(tb.b(), a, b, cin);
  Bus out = add.sum;
  out.push_back(add.cout);
  tb.finish(out);
  for (std::uint64_t x = 0; x < 32; ++x) {
    for (std::uint64_t y = 0; y < 32; ++y) {
      tb.set(a, x);
      tb.set(b, y);
      tb.set({cin}, (x ^ y) & 1);
      EXPECT_EQ(tb.eval(out), x + y + ((x ^ y) & 1));
    }
  }
}

TEST(ClaAdder, Random16Bit) {
  CombTb tb;
  Bus a = tb.in("a", 16), b = tb.in("b", 16);
  auto add = cla_adder(tb.b(), a, b, tb.b().const0());
  Bus out = add.sum;
  out.push_back(add.cout);
  tb.finish(out);
  Rng rng(21);
  for (int k = 0; k < 400; ++k) {
    const std::uint64_t x = rng.below(1u << 16);
    const std::uint64_t y = rng.below(1u << 16);
    tb.set(a, x);
    tb.set(b, y);
    EXPECT_EQ(tb.eval(out), x + y);
  }
}

TEST(Subtractor, DiffAndBorrow) {
  CombTb tb;
  Bus a = tb.in("a", 6), b = tb.in("b", 6);
  auto sub = subtractor(tb.b(), a, b);
  Bus out = sub.diff;
  out.push_back(sub.no_borrow);
  tb.finish(out);
  for (std::uint64_t x = 0; x < 64; x += 3) {
    for (std::uint64_t y = 0; y < 64; y += 5) {
      tb.set(a, x);
      tb.set(b, y);
      const std::uint64_t got = tb.eval(out);
      EXPECT_EQ(got & 63u, (x - y) & 63u);
      EXPECT_EQ((got >> 6) & 1u, x >= y ? 1u : 0u);  // no-borrow == a>=b
    }
  }
}

TEST(Comparators, EqualLessZero) {
  CombTb tb;
  Bus a = tb.in("a", 5), b = tb.in("b", 5);
  const NetId eq = equal(tb.b(), a, b);
  const NetId lt = less_than(tb.b(), a, b);
  const NetId z = is_zero(tb.b(), a);
  Bus out = {eq, lt, z};
  tb.finish(out);
  for (std::uint64_t x = 0; x < 32; ++x) {
    for (std::uint64_t y = 0; y < 32; ++y) {
      tb.set(a, x);
      tb.set(b, y);
      const std::uint64_t got = tb.eval(out);
      EXPECT_EQ(got & 1, x == y ? 1u : 0u);
      EXPECT_EQ((got >> 1) & 1, x < y ? 1u : 0u);
      EXPECT_EQ((got >> 2) & 1, x == 0 ? 1u : 0u);
    }
  }
}

TEST(BarrelShifter, LogicalBothDirections) {
  for (bool left : {false, true}) {
    CombTb tb;
    Bus a = tb.in("a", 8);
    Bus amt = tb.in("amt", 3);
    Bus out = barrel_shifter(tb.b(), a, amt, left);
    tb.finish(out);
    Rng rng(5);
    for (int k = 0; k < 200; ++k) {
      const std::uint64_t x = rng.below(256);
      const std::uint64_t s = rng.below(8);
      tb.set(a, x);
      tb.set(amt, s);
      const std::uint64_t want =
          left ? (x << s) & 0xffu : (x >> s);
      EXPECT_EQ(tb.eval(out), want) << "x=" << x << " s=" << s
                                    << " left=" << left;
    }
  }
}

TEST(BarrelShifter, ArithmeticRight) {
  CombTb tb;
  Bus a = tb.in("a", 8);
  Bus amt = tb.in("amt", 3);
  Bus out = barrel_shifter(tb.b(), a, amt, /*left=*/false, /*arith=*/true);
  tb.finish(out);
  for (std::uint64_t x : {0x80ull, 0xffull, 0x7full, 0x01ull, 0xa5ull}) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      tb.set(a, x);
      tb.set(amt, s);
      const auto sx = static_cast<std::int8_t>(x);
      const auto want = static_cast<std::uint64_t>(
                            static_cast<std::uint8_t>(sx >> s));
      EXPECT_EQ(tb.eval(out), want) << "x=" << x << " s=" << s;
    }
  }
}

TEST(Multiplier, Exhaustive4x4) {
  CombTb tb;
  Bus a = tb.in("a", 4), b = tb.in("b", 4);
  Bus out = multiplier(tb.b(), a, b);
  ASSERT_EQ(out.size(), 8u);
  tb.finish(out);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      tb.set(a, x);
      tb.set(b, y);
      EXPECT_EQ(tb.eval(out), x * y) << x << "*" << y;
    }
  }
}

TEST(Multiplier, Random8x8) {
  CombTb tb;
  Bus a = tb.in("a", 8), b = tb.in("b", 8);
  Bus out = multiplier(tb.b(), a, b);
  tb.finish(out);
  Rng rng(17);
  for (int k = 0; k < 300; ++k) {
    const std::uint64_t x = rng.below(256);
    const std::uint64_t y = rng.below(256);
    tb.set(a, x);
    tb.set(b, y);
    EXPECT_EQ(tb.eval(out), x * y);
  }
}

TEST(CarrySaveSum, ManyRows) {
  CombTb tb;
  std::vector<Bus> rows;
  for (int r = 0; r < 5; ++r) {
    rows.push_back(tb.in("r" + std::to_string(r), 6));
  }
  std::vector<Bus> rows_copy = rows;
  Bus out = carry_save_sum(tb.b(), rows_copy, 9);
  tb.finish(out);
  Rng rng(31);
  for (int k = 0; k < 200; ++k) {
    std::uint64_t want = 0;
    for (auto& row : rows) {
      const std::uint64_t v = rng.below(64);
      tb.set(row, v);
      want += v;
    }
    EXPECT_EQ(tb.eval(out), want & 0x1ffu);
  }
}

TEST(Decoder, OneHotExhaustive) {
  CombTb tb;
  Bus sel = tb.in("sel", 4);
  Bus out = decoder_onehot(tb.b(), sel);
  ASSERT_EQ(out.size(), 16u);
  tb.finish(out);
  for (std::uint64_t s = 0; s < 16; ++s) {
    tb.set(sel, s);
    EXPECT_EQ(tb.eval(out), 1ull << s);
  }
}

TEST(MuxTree, SelectsEachOption) {
  CombTb tb;
  std::vector<Bus> options;
  for (int i = 0; i < 6; ++i) {  // non-power-of-two option count
    options.push_back(tb.in("o" + std::to_string(i), 4));
  }
  Bus sel = tb.in("sel", 3);
  Bus out = mux_tree(tb.b(), options, sel);
  tb.finish(out);
  for (std::uint64_t s = 0; s < 6; ++s) {
    for (std::size_t i = 0; i < options.size(); ++i) {
      tb.set(options[i], (i * 5 + 3) & 0xf);
    }
    tb.set(sel, s);
    EXPECT_EQ(tb.eval(out), (s * 5 + 3) & 0xf) << "s=" << s;
  }
}

TEST(Extend, SignAndZero) {
  CombTb tb;
  Bus a = tb.in("a", 4);
  Bus sx = extend(tb.b(), a, 8, /*sign=*/true);
  Bus zx = extend(tb.b(), a, 8, /*sign=*/false);
  Bus out = sx;
  out.insert(out.end(), zx.begin(), zx.end());
  tb.finish(out);
  tb.set(a, 0b1010);
  const std::uint64_t got = tb.eval(out);
  EXPECT_EQ(got & 0xff, 0b11111010u);
  EXPECT_EQ((got >> 8) & 0xff, 0b00001010u);
}

TEST(Generators, RejectDegenerateInputs) {
  CombTb tb;
  Bus a = tb.in("a", 4), b3 = tb.in("b", 3);
  EXPECT_THROW(ripple_adder(tb.b(), a, b3, tb.b().const0()),
               std::invalid_argument);
  EXPECT_THROW(cla_adder(tb.b(), a, b3, tb.b().const0()),
               std::invalid_argument);
  EXPECT_THROW(equal(tb.b(), a, b3), std::invalid_argument);
  EXPECT_THROW(multiplier(tb.b(), Bus{}, a), std::invalid_argument);
  EXPECT_THROW(mux_tree(tb.b(), {}, a), std::invalid_argument);
  std::vector<Bus> too_many(5, a);
  Bus sel1 = tb.in("s1", 2);
  EXPECT_THROW(mux_tree(tb.b(), too_many, sel1), std::invalid_argument);
}

}  // namespace
}  // namespace vipvt
