// Tests for the extension features: spatially-correlated within-die
// variation, the logic-aware island generator (the paper's future-work
// exploration), and the adaptive-body-bias comparison physics.

#include <gtest/gtest.h>

#include <memory>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "timing/recovery.hpp"
#include "util/stats.hpp"
#include "vi/logic_islands.hpp"
#include "vi/scenario.hpp"
#include "vi/shifters.hpp"

namespace vipvt {
namespace {

// ---------- correlated variation -------------------------------------------

class CorrVariationTest : public ::testing::Test {
 protected:
  CharParams cp_;
  ExposureField field_ = ExposureField::scaled_65nm(cp_);
};

TEST_F(CorrVariationTest, ZeroFractionIsInactive) {
  VariationModel model(cp_, field_);
  Rng rng(3);
  EXPECT_FALSE(model.draw_field(rng).active());
  EXPECT_DOUBLE_EQ(model.sigma_correlated_nm(), 0.0);
  EXPECT_NEAR(model.sigma_independent_nm(),
              0.065 / 3.0 * cp_.lgate_nom, 1e-12);
}

TEST_F(CorrVariationTest, VariancePreservedUnderSplit) {
  VariationConfig cfg;
  cfg.correlated_fraction = 0.5;
  VariationModel model(cp_, field_, cfg);
  const double total = 0.065 / 3.0 * cp_.lgate_nom;
  EXPECT_NEAR(model.sigma_correlated_nm() * model.sigma_correlated_nm() +
                  model.sigma_independent_nm() * model.sigma_independent_nm(),
              total * total, 1e-9);

  // Empirically: per-cell marginal sigma matches the i.i.d. model.
  Rng rng(17);
  RunningStats rs;
  const DieLocation loc = DieLocation::point('B');
  const Point pos{80.0, 120.0};
  for (int s = 0; s < 3000; ++s) {
    const CorrelatedField f = model.draw_field(rng);
    rs.add(model.sample_lgate(pos, loc, rng, &f));
  }
  EXPECT_NEAR(rs.stddev(), total, 0.06);
}

TEST_F(CorrVariationTest, NearbyCellsCorrelateDistantDoNot) {
  VariationConfig cfg;
  cfg.correlated_fraction = 0.8;
  cfg.correlation_length_um = 150.0;
  VariationModel model(cp_, field_, cfg);
  Rng rng(23);
  const DieLocation loc = DieLocation::point('B');
  const Point a{100.0, 100.0};
  const Point near_a{112.0, 104.0};     // << correlation length
  const Point far_a{100.0 + 1800.0, 100.0 + 1800.0};  // >> length

  // Sample-correlation across many field draws.
  const int kN = 1500;
  std::vector<double> va, vn, vf;
  for (int s = 0; s < kN; ++s) {
    const CorrelatedField f = model.draw_field(rng);
    va.push_back(model.sample_lgate(a, loc, rng, &f));
    vn.push_back(model.sample_lgate(near_a, loc, rng, &f));
    vf.push_back(model.sample_lgate(far_a, loc, rng, &f));
  }
  auto corr = [](const std::vector<double>& x, const std::vector<double>& y) {
    RunningStats sx, sy;
    for (double v : x) sx.add(v);
    for (double v : y) sy.add(v);
    double cov = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
    }
    cov /= static_cast<double>(x.size() - 1);
    return cov / (sx.stddev() * sy.stddev());
  };
  EXPECT_GT(corr(va, vn), 0.5);
  EXPECT_LT(std::abs(corr(va, vf)), 0.25);
}

TEST_F(CorrVariationTest, FieldInterpolatesSmoothly) {
  Rng rng(5);
  CorrelatedField f(100.0, 24, 1.0, rng);
  ASSERT_TRUE(f.active());
  // Continuity: tiny moves change the value only slightly.
  const double v0 = f.at(Point{250.0, 250.0});
  const double v1 = f.at(Point{251.0, 250.0});
  EXPECT_LT(std::abs(v1 - v0), 0.2);
  // Out-of-range positions clamp rather than blow up.
  EXPECT_NO_THROW(f.at(Point{1e6, -1e6}));
}

// ---------- ABB baseline physics ---------------------------------------------

TEST(AbbPhysics, ForwardBiasSpeedsUpAndLeaks) {
  CharParams cp;
  EXPECT_LT(cp.abb_delay_ratio(0.05), 1.0);
  EXPECT_GT(cp.abb_leakage_ratio(0.05), 1.0);
  EXPECT_DOUBLE_EQ(cp.abb_delay_ratio(0.0), 1.0);
}

TEST(AbbPhysics, MatchingShiftReproducesAvsSpeedup) {
  CharParams cp;
  const double shift = cp.abb_shift_matching_avs();
  EXPECT_NEAR(cp.abb_delay_ratio(shift), cp.high_vdd_speed_ratio(), 1e-6);
  // The paper's argument (via Humenay/Tschanz): ABB pays far more
  // leakage than AVS for the same speedup.
  EXPECT_GT(cp.abb_leakage_ratio(shift),
            2.0 * cp.leakage_factor(cp.lgate_nom, cp.vdd_high));
}

// ---------- logic-aware islands ------------------------------------------------

class LogicIslandFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new Library(make_st65lp_like());
    design_ = new Design(make_vex_design(*lib_, VexConfig::tiny()));
    fp_ = new Floorplan(Floorplan::for_design(*design_, FloorplanConfig{}));
    db_ = new PlacementDb(*fp_);
    place_design(*design_, *fp_, PlacerConfig{}, *db_);
    sta_ = new StaEngine(*design_, StaOptions{});
    sta_->set_clock_period(sta_->min_period() * 1.04);
    recover_power(*design_, *sta_, RecoveryConfig{});
    field_ = new ExposureField(ExposureField::scaled_65nm(lib_->char_params()));
    model_ = new VariationModel(lib_->char_params(), *field_);
    ScenarioConfig sc;
    sc.sweep_points = 5;
    sc.mc.samples = 80;
    auto scen = characterize_scenarios(*design_, *sta_, *model_, sc);
    std::optional<DieLocation> fb;
    for (std::size_t k = scen.by_severity.size(); k-- > 0;) {
      if (scen.by_severity[k].has_value()) fb = scen.by_severity[k]->location;
    }
    for (const auto& sp : scen.by_severity) {
      if (sp.has_value()) {
        locs_.push_back(sp->location);
        fb = sp->location;
      } else if (fb.has_value()) {
        locs_.push_back(*fb);
      }
    }
    if (locs_.empty()) locs_.push_back(DieLocation::point('A'));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete field_;
    delete sta_;
    delete db_;
    delete fp_;
    delete design_;
    delete lib_;
    locs_.clear();
  }

  static Library* lib_;
  static Design* design_;
  static Floorplan* fp_;
  static PlacementDb* db_;
  static StaEngine* sta_;
  static ExposureField* field_;
  static VariationModel* model_;
  static std::vector<DieLocation> locs_;
};

Library* LogicIslandFixture::lib_ = nullptr;
Design* LogicIslandFixture::design_ = nullptr;
Floorplan* LogicIslandFixture::fp_ = nullptr;
PlacementDb* LogicIslandFixture::db_ = nullptr;
StaEngine* LogicIslandFixture::sta_ = nullptr;
ExposureField* LogicIslandFixture::field_ = nullptr;
VariationModel* LogicIslandFixture::model_ = nullptr;
std::vector<DieLocation> LogicIslandFixture::locs_;

TEST_F(LogicIslandFixture, CompensatesEveryScenario) {
  LogicIslandConfig cfg;
  cfg.mc_samples = 80;
  LogicIslandGenerator gen(*design_, *sta_, *model_, cfg);
  const IslandPlan plan = gen.generate(locs_);
  ASSERT_EQ(plan.num_islands(), static_cast<int>(locs_.size()));
  for (int k = 0; k < plan.num_islands(); ++k) {
    EXPECT_TRUE(plan.feasible[static_cast<std::size_t>(k)]) << k;
  }

  MonteCarloSsta mc(*design_, *sta_, *model_);
  McConfig mcc;
  mcc.samples = 80;
  for (int sev = 1; sev <= plan.num_islands(); ++sev) {
    sta_->compute_base(plan.corners_for_severity(sev));
    const McResult res =
        mc.run(locs_[static_cast<std::size_t>(sev - 1)], mcc);
    EXPECT_EQ(res.num_violating_stages(), 0) << "severity " << sev;
  }
  sta_->compute_base_all_low();
}

TEST_F(LogicIslandFixture, SmallerIslandsButMoreShifters) {
  // The trade the paper predicts: logic-driven grouping boosts fewer
  // cells but fragments the domains, multiplying crossings.
  LogicIslandConfig lcfg;
  lcfg.mc_samples = 80;
  LogicIslandGenerator lgen(*design_, *sta_, *model_, lcfg);
  const IslandPlan logic_plan = lgen.generate(locs_);
  const std::size_t logic_cells = logic_plan.total_island_cells();
  // Count would-be crossings without mutating the netlist.
  auto count_crossings = [&](const IslandPlan& plan) {
    std::size_t crossings = 0;
    for (NetId n = 0; n < design_->num_nets(); ++n) {
      const Net& net = design_->net(n);
      if (net.is_clock) continue;
      const int drv =
          net.has_cell_driver()
              ? plan.domain_rank(design_->instance(net.driver.inst).domain)
              : 0;
      std::array<bool, 256> seen{};
      for (const auto& sink : net.sinks) {
        const DomainId dom = design_->instance(sink.inst).domain;
        if (plan.domain_rank(dom) > drv && !seen[dom]) {
          seen[dom] = true;
          ++crossings;
        }
      }
    }
    return crossings;
  };
  const std::size_t logic_crossings = count_crossings(logic_plan);

  IslandConfig scfg;
  scfg.mc_samples = 80;
  IslandGenerator sgen(*design_, *fp_, *sta_, *model_, scfg);
  const IslandPlan slice_plan = sgen.generate(locs_);
  const std::size_t slice_cells = slice_plan.total_island_cells();
  const std::size_t slice_crossings = count_crossings(slice_plan);

  EXPECT_LT(logic_cells, slice_cells);
  EXPECT_GT(logic_cells, 0u);
  // Fragmentation costs crossings per boosted cell.
  EXPECT_GT(static_cast<double>(logic_crossings) /
                static_cast<double>(std::max<std::size_t>(1, logic_cells)),
            static_cast<double>(slice_crossings) /
                static_cast<double>(std::max<std::size_t>(1, slice_cells)));
}

}  // namespace
}  // namespace vipvt
