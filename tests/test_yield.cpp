// Wafer-scale yield subsystem tests: wafer geometry invariants, report
// consistency, and — the load-bearing contract — BIT-IDENTICAL reports
// for serial, 1-thread and N-thread runs over a >= 100-die wafer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <sstream>
#include <utility>

#include "io/yield_writers.hpp"
#include "vi/flow.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

namespace vipvt {
namespace {

WaferConfig test_wafer_config() {
  WaferConfig wc;
  wc.wafer_diameter_mm = 200.0;  // 120 dies with the 28 mm / 14 mm geometry
  return wc;
}

YieldConfig test_yield_config() {
  YieldConfig yc;
  yc.mc.samples = 12;  // population stats only need a coarse sketch here
  yc.seed = 0xd1e5;
  return yc;
}

// ---- wafer geometry (no flow needed) --------------------------------------

TEST(WaferModel, StampsAtLeastOneHundredDies) {
  const WaferModel wafer(test_wafer_config());
  EXPECT_GE(wafer.num_dies(), 100u);
  EXPECT_EQ(wafer.dies_per_field_side(), 2);
}

TEST(WaferModel, DieIdsAreDenseRowMajor) {
  const WaferModel wafer(test_wafer_config());
  int prev_row = -1, prev_col = -1;
  for (std::size_t i = 0; i < wafer.num_dies(); ++i) {
    const WaferDie& d = wafer.dies()[i];
    EXPECT_EQ(d.id, static_cast<int>(i));
    const int row = wafer.grid_row(d), col = wafer.grid_col(d);
    EXPECT_TRUE(row > prev_row || (row == prev_row && col > prev_col));
    prev_row = row;
    prev_col = col;
  }
}

TEST(WaferModel, DiesFitInsideUsableRadius) {
  const WaferConfig wc = test_wafer_config();
  const WaferModel wafer(wc);
  const double radius = 0.5 * wc.wafer_diameter_mm - wc.edge_exclusion_mm;
  const double half_diag = wc.die_mm * std::numbers::sqrt2 * 0.5;
  for (const WaferDie& d : wafer.dies()) {
    EXPECT_LE(std::hypot(d.center_mm.x, d.center_mm.y) + half_diag,
              radius + 1e-9);
  }
}

TEST(WaferModel, DieLocationsTileTheExposureField) {
  const WaferConfig wc = test_wafer_config();
  const WaferModel wafer(wc);
  std::set<std::pair<double, double>> field_positions;
  for (const WaferDie& d : wafer.dies()) {
    const Point o = d.location.chip_origin_mm;
    EXPECT_GE(o.x, 0.0);
    EXPECT_GE(o.y, 0.0);
    EXPECT_LE(o.x + wc.die_mm, wc.field_mm + 1e-9);
    EXPECT_LE(o.y + wc.die_mm, wc.field_mm + 1e-9);
    field_positions.insert({o.x, o.y});
  }
  // Every die-grid slot of the reticle occurs somewhere on the wafer.
  EXPECT_EQ(field_positions.size(),
            static_cast<std::size_t>(wafer.dies_per_field_side() *
                                     wafer.dies_per_field_side()));
}

TEST(WaferModel, AsciiMapRendersEveryDie) {
  const WaferModel wafer(test_wafer_config());
  const std::string map = wafer.ascii_map();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(map.begin(), map.end(), '#')),
            wafer.num_dies());
}

TEST(WaferModel, RejectsDegenerateConfigs) {
  WaferConfig wc;
  wc.die_mm = 0.0;
  EXPECT_THROW(WaferModel{wc}, std::invalid_argument);
  wc = WaferConfig{};
  wc.die_mm = 30.0;  // die larger than the exposure field
  EXPECT_THROW(WaferModel{wc}, std::invalid_argument);
}

// ---- yield analysis over the tiny-core flow -------------------------------

FlowConfig tiny_flow_config() {
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  return cfg;
}

class YieldFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow_ = new Flow(tiny_flow_config());
    flow_->simulate_activity();
    wafer_ = new WaferModel(test_wafer_config());
    const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
    ThreadPool pool(4);
    report_ = new YieldReport(
        analyzer.analyze(*wafer_, test_yield_config(), &pool));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete wafer_;
    delete flow_;
    report_ = nullptr;
    wafer_ = nullptr;
    flow_ = nullptr;
  }
  static Flow* flow_;
  static WaferModel* wafer_;
  static YieldReport* report_;
};

Flow* YieldFixture::flow_ = nullptr;
WaferModel* YieldFixture::wafer_ = nullptr;
YieldReport* YieldFixture::report_ = nullptr;

std::string serialize(const WaferModel& wafer, const YieldReport& report) {
  std::ostringstream os;
  write_yield_csv(os, wafer, report);
  write_yield_json(os, report);
  return os.str();
}

TEST_F(YieldFixture, ReportCoversEveryDieConsistently) {
  ASSERT_EQ(report_->dies.size(), wafer_->num_dies());
  std::size_t policy_sum = 0;
  for (const auto c : report_->policy_count) policy_sum += c;
  EXPECT_EQ(policy_sum, report_->total_dies());
  EXPECT_GE(report_->parametric_yield(), 0.0);
  EXPECT_LE(report_->parametric_yield(), 1.0);
  for (std::size_t i = 0; i < report_->dies.size(); ++i) {
    const DieOutcome& d = report_->dies[i];
    EXPECT_EQ(d.die_id, static_cast<int>(i));
    EXPECT_GT(d.total_mw, 0.0);
    EXPECT_GT(d.fmax_ghz, 0.0);
    if (d.policy != TuningPolicy::Discard) EXPECT_TRUE(d.timing_met);
  }
}

TEST_F(YieldFixture, WaferReproducesThePaperGradient) {
  // Dies at the slow field corner (point-A position, field origin) must
  // demand at least as much compensation as dies at the fast corner
  // (point-D position) — the wafer-scale restatement of Fig. 3/4.
  RunningStats slow_islands, fast_islands;
  const double die = report_->wafer.die_mm;
  for (const DieOutcome& d : report_->dies) {
    const WaferDie& g = wafer_->dies()[static_cast<std::size_t>(d.die_id)];
    const int raised = d.policy == TuningPolicy::ChipWideHigh
                           ? flow_->island_plan().num_islands() + 1
                           : d.islands_raised;
    if (g.location.chip_origin_mm.x < die * 0.5 &&
        g.location.chip_origin_mm.y < die * 0.5) {
      slow_islands.add(raised);
    } else if (g.location.chip_origin_mm.x > die * 0.5 &&
               g.location.chip_origin_mm.y > die * 0.5) {
      fast_islands.add(raised);
    }
  }
  ASSERT_GT(slow_islands.count(), 0u);
  ASSERT_GT(fast_islands.count(), 0u);
  EXPECT_GE(slow_islands.mean(), fast_islands.mean());
}

TEST_F(YieldFixture, IslandActivationMatchesPolicyCounts) {
  std::size_t activation_sum = 0;
  for (const auto c : report_->island_activation) activation_sum += c;
  EXPECT_EQ(activation_sum, report_->count(TuningPolicy::AllLow) +
                                report_->count(TuningPolicy::NestedIslands));
  EXPECT_EQ(report_->island_activation.size(),
            static_cast<std::size_t>(flow_->island_plan().num_islands()) + 1);
}

TEST_F(YieldFixture, SpeedBinsPartitionShippedDies) {
  std::size_t binned = 0;
  for (const auto c : report_->speed_bin_count) binned += c;
  EXPECT_EQ(binned, report_->fmax_ghz.count());
  EXPECT_EQ(report_->fmax_ghz.count(), report_->shipped_dies());
}

TEST_F(YieldFixture, PolicyGlyphsMatchAsciiMap) {
  const std::string glyphs = report_->policy_glyphs();
  ASSERT_EQ(glyphs.size(), wafer_->num_dies());
  const std::string map = wafer_->ascii_map(glyphs);
  for (char g : glyphs) {
    EXPECT_NE(map.find(g), std::string::npos);
  }
}

// The acceptance contract: report is bit-identical for 1-thread and
// N-thread runs (and for the no-pool serial path).  Compared through the
// deterministic writers, so formatting ties the whole chain down.
TEST_F(YieldFixture, ReportBitIdenticalAcrossThreadCounts) {
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  ThreadPool one(1);
  const YieldReport serial =
      analyzer.analyze(*wafer_, test_yield_config(), nullptr);
  const YieldReport one_thread =
      analyzer.analyze(*wafer_, test_yield_config(), &one);
  const std::string parallel_txt = serialize(*wafer_, *report_);  // 4 threads
  EXPECT_EQ(serialize(*wafer_, serial), parallel_txt);
  EXPECT_EQ(serialize(*wafer_, one_thread), parallel_txt);
}

TEST_F(YieldFixture, ReportBitIdenticalUnderForcedFullRecorner) {
  // Wafer workers delta-build their per-level base snapshots through
  // StaEngine::recorner_delta; forcing the full-recompute fallback in
  // every worker (fallback fraction 0 propagates through the engine
  // clones) must reproduce the whole report byte-for-byte.
  StaEngine full_sta(flow_->sta());
  full_sta.set_recorner_fallback_fraction(0.0);
  const YieldAnalyzer full_analyzer(
      flow_->design(), full_sta, flow_->variation(), flow_->island_plan(),
      flow_->razor_plan(), flow_->activity(),
      1.0 / flow_->post_shifter_clock_ns());
  const YieldReport full_report =
      full_analyzer.analyze(*wafer_, test_yield_config(), nullptr);
  EXPECT_EQ(serialize(*wafer_, full_report), serialize(*wafer_, *report_));
}

// ---- adaptive per-die sampling (DESIGN.md §14) -----------------------------

/// Fixed-budget runs read as the degenerate adaptive case: every die
/// draws exactly the budget, nothing converges early, savings are zero.
TEST_F(YieldFixture, FixedBudgetAccountingIsDegenerate) {
  const YieldConfig cfg = test_yield_config();
  EXPECT_EQ(report_->mc_samples_budget,
            wafer_->num_dies() * static_cast<std::size_t>(cfg.mc.samples));
  EXPECT_EQ(report_->mc_samples_drawn, report_->mc_samples_budget);
  EXPECT_EQ(report_->mc_converged_dies, 0u);
  EXPECT_DOUBLE_EQ(report_->mc_sample_savings(), 0.0);
  for (const DieOutcome& d : report_->dies) {
    EXPECT_EQ(d.mc_samples, cfg.mc.samples);
    EXPECT_EQ(d.mc_stop, McStop::FixedBudget);
  }
}

/// Adaptive wafer accounting: per-die budgets land inside
/// [min_samples, max_samples], the wafer budget is dies x max_samples,
/// and the savings figure follows from drawn/budget.  The loose-target
/// run converges every die at the first checkpoint; the zero-target run
/// caps every die at max_samples with zero savings.
TEST_F(YieldFixture, AdaptiveAccountingIsConsistent) {
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  YieldConfig yc = test_yield_config();
  yc.mc.adaptive.enabled = true;
  yc.mc.adaptive.min_samples = 8;
  yc.mc.adaptive.max_samples = 48;
  yc.mc.adaptive.check_every_batches = 1;
  yc.mc.adaptive.mean_half_width_ns = 1e9;
  yc.mc.adaptive.sigma_half_width_ns = 1e9;
  const std::size_t dies = wafer_->num_dies();

  const YieldReport loose = analyzer.analyze(*wafer_, yc, nullptr);
  EXPECT_EQ(loose.mc_samples_budget, dies * 48u);
  EXPECT_GE(loose.mc_samples_drawn, dies * 8u);
  EXPECT_LT(loose.mc_samples_drawn, loose.mc_samples_budget);
  EXPECT_EQ(loose.mc_converged_dies, dies);
  EXPECT_GT(loose.mc_sample_savings(), 0.0);
  EXPECT_LT(loose.mc_sample_savings(), 1.0);
  std::size_t drawn = 0;
  for (const DieOutcome& d : loose.dies) {
    EXPECT_GE(d.mc_samples, 8);
    EXPECT_LE(d.mc_samples, 48);
    EXPECT_EQ(d.mc_stop, McStop::Converged);
    drawn += static_cast<std::size_t>(d.mc_samples);
  }
  EXPECT_EQ(drawn, loose.mc_samples_drawn);

  yc.mc.adaptive.mean_half_width_ns = 0.0;
  yc.mc.adaptive.sigma_half_width_ns = 0.0;
  const YieldReport capped = analyzer.analyze(*wafer_, yc, nullptr);
  EXPECT_EQ(capped.mc_samples_drawn, capped.mc_samples_budget);
  EXPECT_EQ(capped.mc_converged_dies, 0u);
  EXPECT_DOUBLE_EQ(capped.mc_sample_savings(), 0.0);
  for (const DieOutcome& d : capped.dies) {
    EXPECT_EQ(d.mc_samples, 48);
    EXPECT_EQ(d.mc_stop, McStop::MaxSamples);
  }
}

/// Per-die adaptive stopping is part of the wafer determinism contract:
/// serialized reports (CSV + JSON, mc_samples/mc_stop columns included)
/// must be byte-identical for serial and pooled runs.
TEST_F(YieldFixture, AdaptiveReportBitIdenticalAcrossThreadCounts) {
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  YieldConfig yc = test_yield_config();
  yc.mc.adaptive.enabled = true;
  yc.mc.adaptive.min_samples = 8;
  yc.mc.adaptive.max_samples = 48;
  yc.mc.adaptive.check_every_batches = 1;
  yc.mc.adaptive.mean_half_width_ns = 1e9;
  yc.mc.adaptive.sigma_half_width_ns = 1e9;
  const YieldReport serial = analyzer.analyze(*wafer_, yc, nullptr);
  ThreadPool pool(3);
  const YieldReport pooled = analyzer.analyze(*wafer_, yc, &pool);
  EXPECT_EQ(serialize(*wafer_, serial), serialize(*wafer_, pooled));
}

/// Every evaluation tier — flat MC, analytic triage (§16), adaptive MC
/// (§14), stage macromodel (§19) — consumes the identical per-die RNG
/// positions, so the silicon-side outputs (fabrication, compensation,
/// power) are bit-identical whichever tier screened the die.
TEST_F(YieldFixture, AllTiersKeepIdenticalRngPositionsForSiliconBits) {
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const auto silicon_bits = [](const YieldReport& r) {
    std::ostringstream os;
    for (const DieOutcome& d : r.dies) {
      os << d.die_id << ' ' << d.detected_severity << ' ' << d.islands_raised
         << ' ' << static_cast<int>(d.policy) << ' ' << d.timing_met << ' '
         << d.escalated << ' ' << d.missed_violation << ' '
         << std::hexfloat << d.wns_all_low_ns << ' ' << d.wns_final_ns << ' '
         << d.total_mw << ' ' << d.leakage_mw << std::defaultfloat << '\n';
    }
    return os.str();
  };
  const YieldReport flat = analyzer.analyze(*wafer_, test_yield_config());

  YieldConfig triage_cfg = test_yield_config();
  triage_cfg.tier = EvalTier::Triage;
  const YieldReport triage = analyzer.analyze(*wafer_, triage_cfg);
  EXPECT_GT(triage.triage_analytical, 0u);

  YieldConfig adaptive_cfg = test_yield_config();
  adaptive_cfg.mc.adaptive.enabled = true;
  adaptive_cfg.mc.adaptive.min_samples = 8;
  adaptive_cfg.mc.adaptive.max_samples = 48;
  adaptive_cfg.mc.adaptive.check_every_batches = 1;
  adaptive_cfg.mc.adaptive.mean_half_width_ns = 1e9;
  adaptive_cfg.mc.adaptive.sigma_half_width_ns = 1e9;
  const YieldReport adaptive = analyzer.analyze(*wafer_, adaptive_cfg);
  EXPECT_GT(adaptive.mc_converged_dies, 0u);

  YieldConfig macro_cfg = test_yield_config();
  macro_cfg.tier = EvalTier::Macro;
  const YieldReport macro = analyzer.analyze(*wafer_, macro_cfg);
  EXPECT_GT(macro.triage_macro, 0u);

  const std::string want = silicon_bits(flat);
  EXPECT_EQ(silicon_bits(triage), want);
  EXPECT_EQ(silicon_bits(adaptive), want);
  EXPECT_EQ(silicon_bits(macro), want);
}

TEST_F(YieldFixture, CsvHasOneRowPerDie) {
  std::ostringstream os;
  write_yield_csv(os, *wafer_, *report_);
  const std::string csv = os.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            wafer_->num_dies() + 1);  // header + rows
}

TEST_F(YieldFixture, JsonIsWellFormedEnoughToGrep) {
  std::ostringstream os;
  write_yield_json(os, *report_);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"parametric_yield\""), std::string::npos);
  EXPECT_NE(json.find("\"island_activation\""), std::string::npos);
  EXPECT_NE(json.find("\"speed_bins\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// A die's location within the exposure field depends only on its
// (die_ix, die_iy) reticle slot, so the wafer loop computes ONE
// systematic Lgate map per slot and shares it.  The cached map must be
// exactly what a fresh per-die evaluation would produce.
TEST_F(YieldFixture, ReticleSlotSystematicMapsMatchPerDieEvaluation) {
  const VariationModel& model = flow_->variation();
  const int side = wafer_->dies_per_field_side();
  std::vector<std::vector<double>> slot_maps(
      static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  std::size_t evaluations = 0;
  for (const WaferDie& d : wafer_->dies()) {
    const std::size_t slot =
        static_cast<std::size_t>(d.die_iy) * static_cast<std::size_t>(side) +
        static_cast<std::size_t>(d.die_ix);
    ASSERT_LT(slot, slot_maps.size());
    auto& map = slot_maps[slot];
    if (map.empty()) {
      map = model.systematic_lgates(flow_->design(), d.location);
      ++evaluations;
    }
    // The shared map is bit-identical to this die's own evaluation.
    const std::vector<double> own =
        model.systematic_lgates(flow_->design(), d.location);
    ASSERT_EQ(own.size(), map.size());
    for (std::size_t i = 0; i < own.size(); ++i) {
      ASSERT_EQ(own[i], map[i]) << "die " << d.id << " instance " << i;
    }
  }
  // The cache actually collapses the wafer to one evaluation per slot.
  EXPECT_EQ(evaluations, static_cast<std::size_t>(side) *
                             static_cast<std::size_t>(side));
  EXPECT_LT(evaluations, wafer_->num_dies());
}

// analyze_die_with (persistent controller + shared systematic map — the
// wafer loop's worker path) must be bit-identical to the fresh-state
// analyze_die, including when one controller carries its level-snapshot
// cache across many dies.
TEST_F(YieldFixture, AnalyzeDieWithMatchesAnalyzeDie) {
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  const YieldConfig cfg = test_yield_config();
  const VariationModel& model = flow_->variation();

  StaEngine fresh_engine(flow_->sta());
  StaEngine worker_engine(flow_->sta());
  CompensationController worker_ctrl(flow_->design(), worker_engine, model,
                                     flow_->island_plan(),
                                     flow_->razor_plan());

  // A handful of dies spread across the wafer, processed back-to-back on
  // the same worker state (the cache-reuse case the contract covers).
  const std::vector<WaferDie>& dies = wafer_->dies();
  for (std::size_t i = 0; i < dies.size(); i += 17) {
    const WaferDie& die = dies[i];
    const DieOutcome a = analyzer.analyze_die(fresh_engine, die, cfg);
    const std::vector<double> systematic =
        model.systematic_lgates(flow_->design(), die.location);
    const DieOutcome b =
        analyzer.analyze_die_with(worker_engine, worker_ctrl, die, cfg,
                                  systematic);
    EXPECT_EQ(a.die_id, b.die_id);
    EXPECT_EQ(a.mc_severity, b.mc_severity);
    EXPECT_EQ(a.detected_severity, b.detected_severity);
    EXPECT_EQ(a.islands_raised, b.islands_raised);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.timing_met, b.timing_met);
    EXPECT_EQ(a.escalated, b.escalated);
    EXPECT_EQ(a.missed_violation, b.missed_violation);
    EXPECT_EQ(a.wns_all_low_ns, b.wns_all_low_ns) << "die " << die.id;
    EXPECT_EQ(a.wns_final_ns, b.wns_final_ns) << "die " << die.id;
    EXPECT_EQ(a.fmax_ghz, b.fmax_ghz) << "die " << die.id;
    EXPECT_EQ(a.total_mw, b.total_mw) << "die " << die.id;
    EXPECT_EQ(a.leakage_mw, b.leakage_mw) << "die " << die.id;
  }
}

// The Batched draw profile carries the same determinism-under-
// parallelism contract as Scalar: identical wafer reports for serial,
// 1-thread and N-thread runs (within the profile).
TEST_F(YieldFixture, BatchedProfileReportBitIdenticalAcrossThreadCounts) {
  const YieldAnalyzer analyzer = YieldAnalyzer::from_flow(*flow_);
  YieldConfig cfg = test_yield_config();
  cfg.mc.profile = DrawProfile::Batched;
  const YieldReport serial = analyzer.analyze(*wafer_, cfg, nullptr);
  ThreadPool one(1);
  ThreadPool four(4);
  const YieldReport one_thread = analyzer.analyze(*wafer_, cfg, &one);
  const YieldReport four_thread = analyzer.analyze(*wafer_, cfg, &four);
  const std::string reference = serialize(*wafer_, serial);
  EXPECT_EQ(serialize(*wafer_, one_thread), reference);
  EXPECT_EQ(serialize(*wafer_, four_thread), reference);
  // Distinct stream from the Scalar profile by design (compared
  // statistically in bench/mc_ssta, not bit-wise here).
  EXPECT_NE(reference, serialize(*wafer_, *report_));
}

TEST(YieldGuards, FromFlowRequiresSensorsAndActivity) {
  Flow flow(tiny_flow_config());
  EXPECT_FALSE(flow.characterized());
  EXPECT_FALSE(flow.sensors_planned());
  EXPECT_FALSE(flow.activity_simulated());
  EXPECT_THROW(YieldAnalyzer::from_flow(flow), std::logic_error);
  flow.characterize();
  EXPECT_TRUE(flow.characterized());
  EXPECT_FALSE(flow.islands_generated());
  EXPECT_THROW(YieldAnalyzer::from_flow(flow), std::logic_error);
}

}  // namespace
}  // namespace vipvt
