// Golden-report regression tests: serialize hand-constructed synthetic
// reports and byte-compare against committed fixtures under
// tests/golden/.  The fixtures pin the WRITER SCHEMA (column order,
// field names, formatting) — any schema drift shows up as a byte diff
// here before it breaks downstream dashboards.  The synthetic values
// are exactly representable (dyadic fractions), so the %.6f rendering
// is identical on every platform and the fixtures stay FP-safe.
//
// Regeneration after an intentional schema change:
//   VIPVT_UPDATE_GOLDEN=1 ./build/tests/test_golden_writers
// then commit the rewritten files with the schema change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "io/campaign_writers.hpp"
#include "io/yield_writers.hpp"
#include "yield/wafer.hpp"
#include "yield/yield.hpp"

namespace vipvt {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(VIPVT_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& name, const std::string& got) {
  const std::string path = golden_path(name);
  if (std::getenv("VIPVT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os) << "cannot rewrite " << path;
    os << got;
    return;
  }
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is) << "missing fixture " << path
                  << " (regenerate with VIPVT_UPDATE_GOLDEN=1)";
  std::ostringstream want;
  want << is.rdbuf();
  EXPECT_EQ(got, want.str()) << "writer schema drifted from " << name
                             << "; if intentional, regenerate with "
                                "VIPVT_UPDATE_GOLDEN=1 and commit";
}

/// Small wafer (60 mm) so the CSV fixture stays a handful of rows.
WaferConfig golden_wafer_config() {
  WaferConfig wc;
  wc.wafer_diameter_mm = 60.0;
  return wc;
}

/// One synthetic die: every value a small dyadic fraction of the id, so
/// nothing depends on libm or accumulation order.
DieOutcome synthetic_die(int id) {
  DieOutcome d;
  d.die_id = id;
  d.mc_severity = id % 3;
  d.detected_severity = id % 3;
  d.policy = static_cast<TuningPolicy>(id % kNumTuningPolicies);
  d.islands_raised = d.policy == TuningPolicy::NestedIslands ? 1 + id % 2 : 0;
  d.timing_met = d.policy == TuningPolicy::AllLow;
  d.escalated = id % 4 == 3;
  d.missed_violation = false;
  d.wns_all_low_ns = -0.25 + 0.125 * id;
  d.wns_final_ns = 0.0625 * id;
  d.fmax_ghz = d.policy == TuningPolicy::Discard ? 0.0 : 1.0 + 0.25 * (id % 4);
  d.total_mw = 40.0 + 0.5 * id;
  d.leakage_mw = 4.0 + 0.125 * id;
  if (id % 3 == 0) {
    d.triage_tier = TriageTier::Macro;
    d.mc_samples = 0;
    d.triage_margin_ns = 0.5;
    d.triage_band_ns = 0.125;
  } else {
    d.triage_tier = TriageTier::McFallback;
    d.mc_samples = 16;
    d.triage_margin_ns = 0.0625;
    d.triage_band_ns = 0.125;
  }
  return d;
}

YieldReport synthetic_yield_report(const WaferModel& wafer) {
  YieldReport r;
  r.wafer = golden_wafer_config();
  r.config.mc.samples = 16;
  r.config.seed = 77;
  r.config.tier = EvalTier::Macro;
  r.island_activation.assign(3, 0);
  for (std::size_t i = 0; i < wafer.num_dies(); ++i) {
    const DieOutcome d = synthetic_die(static_cast<int>(i));
    const auto p = static_cast<std::size_t>(d.policy);
    ++r.policy_count[p];
    r.power_mw[p].add(d.total_mw);
    r.leakage_mw[p].add(d.leakage_mw);
    if (d.policy == TuningPolicy::AllLow ||
        d.policy == TuningPolicy::NestedIslands) {
      ++r.island_activation[static_cast<std::size_t>(d.islands_raised)];
    }
    if (d.policy != TuningPolicy::Discard && d.fmax_ghz > 0.0) {
      r.fmax_ghz.add(d.fmax_ghz);
    }
    if (d.triage_tier == TriageTier::Macro) {
      ++r.triage_macro;
    } else {
      ++r.triage_mc_fallback;
      r.mc_samples_drawn += static_cast<std::size_t>(d.mc_samples);
    }
    r.mc_samples_budget += 16;
    r.dies.push_back(d);
  }
  r.speed_bin_lo_ghz = 1.0;
  r.speed_bin_step_ghz = 0.25;
  r.speed_bin_count.assign(4, 0);
  for (const DieOutcome& d : r.dies) {
    if (d.policy == TuningPolicy::Discard || d.fmax_ghz <= 0.0) continue;
    ++r.speed_bin_count[static_cast<std::size_t>(d.mc_severity == 0
                                                     ? (d.die_id % 4)
                                                     : 0)];
  }
  return r;
}

CampaignReport synthetic_campaign_report(const WaferModel& wafer) {
  CampaignReport r;
  r.spec.variants = {"tiny"};
  r.spec.wafer_grids = {golden_wafer_config()};
  r.spec.sigma_scales = {1.0, 1.5};
  PolicyMix vi_only;
  PolicyMix sizing;
  sizing.name = "sizing";
  sizing.sizing.enabled = true;
  sizing.sizing.min_crit_prob = 0.25;
  sizing.crit_samples = 8;
  r.spec.policies = {vi_only, sizing};
  r.spec.mc_samples = {16};
  r.spec.seed = 99;
  r.variant_names = {"tiny"};
  for (std::uint32_t c = 0; c < 2; ++c) {
    CellResult cell;
    cell.cell.index = c;
    cell.cell.sigma = c;
    cell.cell.policy = c;
    for (std::size_t i = 0; i < wafer.num_dies(); ++i) {
      cell.agg.add(synthetic_die(static_cast<int>(i)), 2, 16);
    }
    if (c == 1) {
      cell.portfolio.mix = "sizing";
      cell.portfolio.sizing = true;
      cell.portfolio.gates_upsized = 5;
      cell.portfolio.crit_samples = 8;
      cell.portfolio.area_um2 = 1024.0;
      cell.portfolio.area_delta_um2 = 32.0;
    }
    r.cells.push_back(std::move(cell));
  }
  r.jobs_done = 2;
  r.jobs_total = 2;
  return r;
}

TEST(GoldenWriters, YieldCsvMatchesGolden) {
  const WaferModel wafer(golden_wafer_config());
  std::ostringstream os;
  write_yield_csv(os, wafer, synthetic_yield_report(wafer));
  expect_matches_golden("yield_report.csv", os.str());
}

TEST(GoldenWriters, YieldJsonMatchesGolden) {
  const WaferModel wafer(golden_wafer_config());
  std::ostringstream os;
  write_yield_json(os, synthetic_yield_report(wafer));
  expect_matches_golden("yield_report.json", os.str());
}

TEST(GoldenWriters, CampaignJsonMatchesGolden) {
  const WaferModel wafer(golden_wafer_config());
  std::ostringstream os;
  write_campaign_json(os, synthetic_campaign_report(wafer));
  expect_matches_golden("campaign_report.json", os.str());
}

TEST(GoldenWriters, CampaignNdjsonStreamMatchesGolden) {
  const WaferModel wafer(golden_wafer_config());
  const CampaignReport rep = synthetic_campaign_report(wafer);
  std::ostringstream os;
  os << serialize_campaign_header(0x5eed1234u, 2, rep.spec.seed) << '\n';
  for (std::uint64_t job = 0; job < 2; ++job) {
    ShardRecord rec;
    rec.job = job;
    rec.cell = job;
    rec.wafer = 0;
    rec.die_begin = 0;
    rec.die_end = wafer.num_dies();
    rec.agg = rep.cells[static_cast<std::size_t>(job)].agg;
    os << serialize_shard_record(rec) << '\n';

    // Round-trip: the parser must restore the reducer state exactly
    // (ExactMoments compares bitwise).
    ShardRecord back;
    ASSERT_TRUE(parse_shard_record(serialize_shard_record(rec), back));
    EXPECT_EQ(back.job, rec.job);
    EXPECT_EQ(back.agg.dies, rec.agg.dies);
    EXPECT_EQ(back.agg.triage_macro, rec.agg.triage_macro);
    EXPECT_EQ(back.agg.triage_mc_fallback, rec.agg.triage_mc_fallback);
    EXPECT_TRUE(back.agg.wns_final_ns == rec.agg.wns_final_ns);
    EXPECT_TRUE(back.agg.fmax_ghz == rec.agg.fmax_ghz);
  }
  os << serialize_campaign_trailer(2) << '\n';
  expect_matches_golden("campaign_stream.ndjson", os.str());
}

}  // namespace
}  // namespace vipvt
