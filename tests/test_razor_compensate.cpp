// Razor sensor planning + post-silicon compensation tests: sensor
// coverage, cell-swap bookkeeping, scenario detection on virtual silicon,
// island raising, escalation, and the chip-wide baseline sanity.

#include <gtest/gtest.h>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "timing/recovery.hpp"
#include "vi/compensate.hpp"
#include "vi/islands.hpp"
#include "vi/razor.hpp"
#include "vi/scenario.hpp"

namespace vipvt {
namespace {

class CompensateFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new Library(make_st65lp_like());
    design_ = new Design(make_vex_design(*lib_, VexConfig::tiny()));
    fp_ = new Floorplan(Floorplan::for_design(*design_, FloorplanConfig{}));
    db_ = new PlacementDb(*fp_);
    place_design(*design_, *fp_, PlacerConfig{}, *db_);
    sta_ = new StaEngine(*design_, StaOptions{});
    sta_->set_clock_period(sta_->min_period() * 1.04);
    recover_power(*design_, *sta_, RecoveryConfig{});
    field_ = new ExposureField(ExposureField::scaled_65nm(lib_->char_params()));
    model_ = new VariationModel(lib_->char_params(), *field_);

    ScenarioConfig sc;
    sc.sweep_points = 6;
    sc.mc.samples = 100;
    auto scen = characterize_scenarios(*design_, *sta_, *model_, sc);
    std::vector<DieLocation> locs;
    std::optional<DieLocation> fb;
    for (std::size_t k = scen.by_severity.size(); k-- > 0;) {
      if (scen.by_severity[k].has_value()) fb = scen.by_severity[k]->location;
    }
    for (const auto& sp : scen.by_severity) {
      if (sp.has_value()) {
        locs.push_back(sp->location);
        fb = sp->location;
      } else if (fb.has_value()) {
        locs.push_back(*fb);
      }
    }
    worst_loc_ = locs.empty() ? DieLocation::point('A') : locs.back();

    IslandConfig icfg;
    icfg.dir = SliceDir::Vertical;
    icfg.mc_samples = 80;
    IslandGenerator gen(*design_, *fp_, *sta_, *model_, icfg);
    plan_ = new IslandPlan(gen.generate(locs));

    MonteCarloSsta mc(*design_, *sta_, *model_);
    McConfig mcc;
    mcc.samples = 150;
    worst_mc_ = new McResult(mc.run(worst_loc_, mcc));
    razor_ = new RazorPlan(plan_razor_sensors(*sta_, *worst_mc_));
    apply_razor_plan(*design_, *sta_, *razor_);
    // Cell swap preserves graph topology: refresh base delays.
    sta_->compute_base_all_low();
  }

  static void TearDownTestSuite() {
    delete razor_;
    delete worst_mc_;
    delete plan_;
    delete model_;
    delete field_;
    delete sta_;
    delete db_;
    delete fp_;
    delete design_;
    delete lib_;
  }

  static Library* lib_;
  static Design* design_;
  static Floorplan* fp_;
  static PlacementDb* db_;
  static StaEngine* sta_;
  static ExposureField* field_;
  static VariationModel* model_;
  static IslandPlan* plan_;
  static McResult* worst_mc_;
  static RazorPlan* razor_;
  static DieLocation worst_loc_;
};

Library* CompensateFixture::lib_ = nullptr;
Design* CompensateFixture::design_ = nullptr;
Floorplan* CompensateFixture::fp_ = nullptr;
PlacementDb* CompensateFixture::db_ = nullptr;
StaEngine* CompensateFixture::sta_ = nullptr;
ExposureField* CompensateFixture::field_ = nullptr;
VariationModel* CompensateFixture::model_ = nullptr;
IslandPlan* CompensateFixture::plan_ = nullptr;
McResult* CompensateFixture::worst_mc_ = nullptr;
RazorPlan* CompensateFixture::razor_ = nullptr;
DieLocation CompensateFixture::worst_loc_;

TEST_F(CompensateFixture, SensorsAreSparse) {
  // The headline saving of §4.4: only endpoints that can become critical
  // get a Razor flop — a small fraction of all flops.
  const std::size_t flops = design_->num_flops();
  EXPECT_GT(razor_->total(), 0u);
  EXPECT_LT(razor_->total(), flops / 2) << "sensor plan not selective";
  // EX has sensors (the paper's 12-path example).
  EXPECT_GT(razor_->per_stage[static_cast<std::size_t>(PipeStage::Execute)],
            0u);
}

TEST_F(CompensateFixture, RazorCellsApplied) {
  std::size_t razor_cells = 0;
  for (InstId i = 0; i < design_->num_instances(); ++i) {
    if (design_->cell_of(i).is_razor()) ++razor_cells;
  }
  EXPECT_EQ(razor_cells, razor_->total());
}

TEST_F(CompensateFixture, WorstChipDetectedAndCompensated) {
  CompensationController ctrl(*design_, *sta_, *model_, *plan_, *razor_);
  Rng rng(777);
  int compensated = 0, violating = 0;
  const int kChips = 12;
  for (int c = 0; c < kChips; ++c) {
    const VirtualChip chip =
        fabricate_chip(*design_, *model_, worst_loc_, rng);
    const CompensationOutcome out = ctrl.compensate(chip);
    if (out.wns_before < 0.0) {
      // Ground-truth violation: sensors must have seen it.
      ++violating;
      EXPECT_GT(out.detected_severity, 0) << "chip " << c;
    }
    if (out.timing_met) ++compensated;
    EXPECT_FALSE(out.missed_violation) << "chip " << c;
  }
  // At the worst location some chips genuinely violate, every violation
  // is detected, and all chips end up timing-clean after compensation.
  EXPECT_GT(violating, 0);
  EXPECT_EQ(compensated, kChips);
}

TEST_F(CompensateFixture, GoodChipNeedsNoIslands) {
  CompensationController ctrl(*design_, *sta_, *model_, *plan_, *razor_);
  Rng rng(31);
  DieLocation best = DieLocation::point('D');
  int zero_island_chips = 0;
  for (int c = 0; c < 8; ++c) {
    const VirtualChip chip = fabricate_chip(*design_, *model_, best, rng);
    const CompensationOutcome out = ctrl.compensate(chip);
    if (out.islands_raised == 0) ++zero_island_chips;
    EXPECT_TRUE(out.timing_met);
  }
  EXPECT_GE(zero_island_chips, 6);
}

TEST_F(CompensateFixture, SeverityMonotoneInLocation) {
  CompensationController ctrl(*design_, *sta_, *model_, *plan_, *razor_);
  Rng rng(99);
  double avg_a = 0.0, avg_d = 0.0;
  for (int c = 0; c < 6; ++c) {
    avg_a += ctrl.compensate(
                   fabricate_chip(*design_, *model_, worst_loc_, rng))
                 .islands_raised;
    avg_d += ctrl.compensate(fabricate_chip(*design_, *model_,
                                            DieLocation::point('D'), rng))
                 .islands_raised;
  }
  EXPECT_GT(avg_a, avg_d);
}

TEST_F(CompensateFixture, EscalationIsRare) {
  CompensationController ctrl(*design_, *sta_, *model_, *plan_, *razor_);
  Rng rng(5150);
  int escalated = 0;
  for (int c = 0; c < 10; ++c) {
    const VirtualChip chip =
        fabricate_chip(*design_, *model_, worst_loc_, rng);
    escalated += ctrl.compensate(chip).escalated;
  }
  // Islands are sized against the 3-sigma scenario; individual chips in
  // the far tail may need one extra island, but not routinely.
  EXPECT_LE(escalated, 6);
}

TEST_F(CompensateFixture, CompensateMatchesSequentialReferenceWalk) {
  // compensate() evaluates the escalation tail as one multi-base
  // analyze_batch_bases pass and caches compute_base outputs per level;
  // both are pure execution-layout choices.  Reference: the historical
  // one-level-at-a-time walk, recomputed from scratch on an engine copy.
  CompensationController ctrl(*design_, *sta_, *model_, *plan_, *razor_);
  Rng rng(40490);
  for (int c = 0; c < 8; ++c) {
    const VirtualChip chip =
        fabricate_chip(*design_, *model_, worst_loc_, rng);
    const CompensationOutcome out = ctrl.compensate(chip);

    StaEngine eng(*sta_);
    const auto factors_now = [&] {
      std::vector<double> f(chip.lgate_nm.size());
      for (InstId i = 0; i < f.size(); ++i) {
        f[i] = model_->delay_factor(chip.lgate_nm[i], eng.inst_corner(i),
                                    design_->cell_of(i).vth);
      }
      return f;
    };
    eng.compute_base(plan_->corners_for_severity(0));
    const StaResult truth0 = eng.analyze(factors_now());
    const auto flags = sensor_flags(eng, *razor_, truth0);
    int detected = 0;
    for (PipeStage s :
         {PipeStage::Decode, PipeStage::Execute, PipeStage::WriteBack}) {
      detected += flags[static_cast<std::size_t>(s)];
    }
    int k = detected;
    StaResult truth{};
    for (;; ++k) {
      eng.compute_base(plan_->corners_for_severity(k));
      truth = eng.analyze(factors_now());
      if (truth.wns >= 0.0 || k >= plan_->num_islands()) break;
    }

    EXPECT_EQ(out.detected_severity, detected) << "chip " << c;
    EXPECT_EQ(out.wns_before, truth0.wns) << "chip " << c;
    EXPECT_EQ(out.islands_raised, k) << "chip " << c;
    EXPECT_EQ(out.wns_after, truth.wns) << "chip " << c;  // bit-identical
    EXPECT_EQ(out.timing_met, truth.wns >= 0.0) << "chip " << c;
    EXPECT_EQ(out.escalated, k > detected) << "chip " << c;
  }
}

TEST_F(CompensateFixture, SetLevelBitIdenticalToComputeBase) {
  CompensationController ctrl(*design_, *sta_, *model_, *plan_, *razor_);
  StaEngine eng(*sta_);
  for (int pass = 0; pass < 2; ++pass) {  // second pass hits the cache
    for (int k = plan_->num_islands(); k >= 0; --k) {
      ctrl.set_level(k);
      eng.compute_base(plan_->corners_for_severity(k));
      const StaResult a = sta_->analyze();
      const StaResult b = eng.analyze();
      EXPECT_EQ(a.wns, b.wns) << "level " << k << " pass " << pass;
      EXPECT_EQ(a.min_period_ns, b.min_period_ns)
          << "level " << k << " pass " << pass;
      for (InstId i = 0; i < design_->num_instances(); ++i) {
        ASSERT_EQ(sta_->inst_corner(i), eng.inst_corner(i))
            << "level " << k << " inst " << i;
      }
    }
  }
  ctrl.set_level(0);
  sta_->compute_base_all_low();  // leave the shared engine as found
  EXPECT_THROW(ctrl.set_level(-1), std::invalid_argument);
  EXPECT_THROW(ctrl.set_level(plan_->num_islands() + 1),
               std::invalid_argument);
}

TEST_F(CompensateFixture, LevelSnapshotsAscendingBuildOrderBitIdentical) {
  // level_snapshot() delta-builds from the NEAREST cached level, so the
  // request order decides the delta chain's direction.  The descending
  // order is covered by SetLevelBitIdenticalToComputeBase; this is the
  // ascending chain (all upward island flips), checked snapshot-for-
  // snapshot against fresh full recomputes.
  StaEngine inc_eng(*sta_);
  CompensationController ctrl(*design_, inc_eng, *model_, *plan_, *razor_);
  StaEngine ref_eng(*sta_);
  for (int k = 0; k <= plan_->num_islands(); ++k) {
    ctrl.set_level(k);
    ref_eng.compute_base(plan_->corners_for_severity(k));
    const auto got = inc_eng.snapshot_bases();
    const auto want = ref_eng.snapshot_bases();
    EXPECT_EQ(got.edge_base, want.edge_base) << "level " << k;
    EXPECT_EQ(got.launch_base, want.launch_base) << "level " << k;
    EXPECT_EQ(got.slew, want.slew) << "level " << k;
    EXPECT_EQ(got.inst_corner, want.inst_corner) << "level " << k;
  }
}

TEST_F(CompensateFixture, LevelSnapshotsMatchForcedFullRecornerController) {
  // Forcing recorner_delta's full-recompute fallback (fraction 0) must
  // change nothing observable: the delta-built and full-built snapshot
  // caches are interchangeable byte-for-byte.
  StaEngine delta_eng(*sta_);
  StaEngine full_eng(*sta_);
  full_eng.set_recorner_fallback_fraction(0.0);
  CompensationController delta_ctrl(*design_, delta_eng, *model_, *plan_,
                                    *razor_);
  CompensationController full_ctrl(*design_, full_eng, *model_, *plan_,
                                   *razor_);
  for (int k = 0; k <= plan_->num_islands(); ++k) {
    delta_ctrl.set_level(k);
    full_ctrl.set_level(k);
    const auto a = delta_eng.snapshot_bases();
    const auto b = full_eng.snapshot_bases();
    EXPECT_EQ(a.edge_base, b.edge_base) << "level " << k;
    EXPECT_EQ(a.launch_base, b.launch_base) << "level " << k;
    EXPECT_EQ(a.slew, b.slew) << "level " << k;
    EXPECT_EQ(a.inst_corner, b.inst_corner) << "level " << k;
  }
}

TEST_F(CompensateFixture, CompensateBitIdenticalUnderForcedFullRecorner) {
  // End-to-end: whole compensation outcomes are unaffected by which
  // re-cornering path built the level snapshots.
  StaEngine delta_eng(*sta_);
  StaEngine full_eng(*sta_);
  full_eng.set_recorner_fallback_fraction(0.0);
  CompensationController delta_ctrl(*design_, delta_eng, *model_, *plan_,
                                    *razor_);
  CompensationController full_ctrl(*design_, full_eng, *model_, *plan_,
                                   *razor_);
  Rng rng(271828);
  for (int c = 0; c < 6; ++c) {
    const VirtualChip chip =
        fabricate_chip(*design_, *model_, worst_loc_, rng);
    const CompensationOutcome a = delta_ctrl.compensate(chip);
    const CompensationOutcome b = full_ctrl.compensate(chip);
    EXPECT_EQ(a.detected_severity, b.detected_severity) << "chip " << c;
    EXPECT_EQ(a.islands_raised, b.islands_raised) << "chip " << c;
    EXPECT_EQ(a.timing_met, b.timing_met) << "chip " << c;
    EXPECT_EQ(a.escalated, b.escalated) << "chip " << c;
    EXPECT_EQ(a.wns_before, b.wns_before) << "chip " << c;
    EXPECT_EQ(a.wns_after, b.wns_after) << "chip " << c;
  }
}

TEST_F(CompensateFixture, ChipSizeMismatchRejected) {
  CompensationController ctrl(*design_, *sta_, *model_, *plan_, *razor_);
  VirtualChip bad;
  bad.lgate_nm.assign(3, 65.0);
  EXPECT_THROW(ctrl.compensate(bad), std::invalid_argument);
}

TEST(RazorUnit, ThresholdFiltersSensors) {
  // A fake MC result with known probabilities.
  Library lib = make_st65lp_like();
  Design d("razor_unit", lib);
  NetlistBuilder b(d);
  b.clock_input("clk");
  const NetId a = b.input("a");
  b.set_stage(PipeStage::Execute);
  const NetId q1 = b.dff(a);
  b.set_stage(PipeStage::Decode);
  const NetId q2 = b.dff(q1);
  b.output(q2);
  for (InstId i = 0; i < d.num_instances(); ++i) {
    d.instance(i).pos = {1.0, 1.0};
    d.instance(i).placed = true;
  }
  StaEngine sta(d, StaOptions{});
  McResult fake;
  fake.endpoint_crit_prob.assign(sta.endpoints().size(), 0.0);
  // Give only the first flop endpoint a violation probability.
  for (std::size_t k = 0; k < sta.endpoints().size(); ++k) {
    if (sta.endpoints()[k].flop != kInvalidInst) {
      fake.endpoint_crit_prob[k] = 0.4;
      break;
    }
  }
  RazorConfig cfg;
  cfg.crit_prob_threshold = 0.5;
  EXPECT_EQ(plan_razor_sensors(sta, fake, cfg).total(), 0u);
  cfg.crit_prob_threshold = 0.3;
  EXPECT_EQ(plan_razor_sensors(sta, fake, cfg).total(), 1u);
  const double added =
      apply_razor_plan(d, sta, plan_razor_sensors(sta, fake, cfg));
  EXPECT_GT(added, 0.0);
}

}  // namespace
}  // namespace vipvt
