// SIMD dispatch layer tests (DESIGN.md §17).  The layer's contract is
// per-lane bit-identity: every compiled dispatch target (scalar / sse2 /
// avx2 / avx512) must reproduce the ScalarPolicy reference lane
// bit-for-bit — for the edge-relaxation kernels, for the
// DelayFactorTables row transform (including the ±clamp_sigma table
// edges and exact interval boundaries), and for the arch-invariant
// normal stream behind DrawProfile::BatchedSimd.  Tests that pin the
// dispatcher restore it through an RAII guard so a failing assertion
// cannot leak the pin into later tests.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "netlist/vex.hpp"
#include "placement/placer.hpp"
#include "util/aligned.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd/dispatch.hpp"
#include "util/simd/kernels.hpp"
#include "variation/mc_ssta.hpp"
#include "variation/model.hpp"

namespace vipvt {
namespace {

struct ArchGuard {
  ~ArchGuard() { simd::reset_arch(); }
};

TEST(SimdDispatch, AvailableArchsSaneAndSettable) {
  const std::vector<simd::Arch> archs = simd::available_archs();
  ASSERT_FALSE(archs.empty());
  // Narrowest first, scalar always compiled and always supported.
  EXPECT_EQ(archs.front(), simd::Arch::Scalar);
  ArchGuard guard;
  for (const simd::Arch a : archs) {
    EXPECT_TRUE(simd::arch_available(a)) << simd::arch_name(a);
    ASSERT_TRUE(simd::set_arch(a)) << simd::arch_name(a);
    EXPECT_EQ(simd::active_arch(), a);
    ASSERT_NE(simd::kernels_for(a), nullptr);
    EXPECT_EQ(&simd::active_kernels(), simd::kernels_for(a));
  }
  simd::reset_arch();
  // The autodetected default is itself one of the available targets.
  EXPECT_TRUE(simd::arch_available(simd::active_arch()));
  EXPECT_FALSE(simd::cpu_features().empty());
  EXPECT_STREQ(simd::arch_name(simd::Arch::Scalar), "scalar");
}

TEST(SimdDispatch, UnavailableArchRejectedWithoutStateChange) {
  ArchGuard guard;
  const simd::Arch before = simd::active_arch();
  for (const simd::Arch a : {simd::Arch::Sse2, simd::Arch::Avx2,
                             simd::Arch::Avx512}) {
    if (simd::arch_available(a)) continue;
    EXPECT_EQ(simd::kernels_for(a), nullptr);
    EXPECT_FALSE(simd::set_arch(a));
    EXPECT_EQ(simd::active_arch(), before);
  }
}

// Randomized relax kernels: every target must produce the scalar
// target's exact bytes for widths that exercise full vector chunks,
// remainder lanes (width % W != 0) and the width-1 degenerate case.
TEST(SimdKernels, RelaxEdgesBitIdenticalAcrossTargets) {
  const std::vector<simd::Arch> archs = simd::available_archs();
  const simd::Kernels* scalar = simd::kernels_for(simd::Arch::Scalar);
  ASSERT_NE(scalar, nullptr);

  constexpr std::size_t kNodes = 48;
  constexpr std::size_t kInsts = 40;
  Rng rng(0xfeedULL);
  std::vector<simd::RelaxEdge> edges;
  for (std::size_t i = 0; i < 400; ++i) {
    simd::RelaxEdge e;
    e.from = static_cast<std::uint32_t>(rng.next() % kNodes);
    e.to = static_cast<std::uint32_t>(rng.next() % kNodes);
    // ~1 in 4 edges fixed (net edges carry no instance factor).
    e.inst = (rng.next() % 4 == 0)
                 ? simd::kInvalidRelaxInst
                 : static_cast<std::uint32_t>(rng.next() % kInsts);
    e.base_delay = static_cast<float>(0.01 + rng.uniform() * 0.2);
    edges.push_back(e);
  }

  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{4},
                                  std::size_t{5}, std::size_t{7},
                                  std::size_t{8}, std::size_t{16},
                                  std::size_t{17}, std::size_t{32}}) {
    AlignedVec<double> factors(kInsts * width);
    for (auto& f : factors) f = 0.8 + 0.4 * rng.uniform();
    AlignedVec<double> init(kNodes * width);
    for (auto& a : init) a = rng.uniform();
    AlignedVec<double> delays(edges.size() * width);
    for (auto& d : delays) d = rng.uniform() * 0.3;

    AlignedVec<double> ref = init;
    scalar->relax_edges(edges.data(), edges.size(), factors.data(),
                        ref.data(), width);
    AlignedVec<double> ref_d = init;
    scalar->relax_edges_delays(edges.data(), edges.size(), delays.data(),
                               ref_d.data(), width);
    for (const simd::Arch a : archs) {
      const simd::Kernels* k = simd::kernels_for(a);
      ASSERT_NE(k, nullptr);
      AlignedVec<double> got = init;
      k->relax_edges(edges.data(), edges.size(), factors.data(), got.data(),
                     width);
      EXPECT_EQ(std::memcmp(ref.data(), got.data(),
                            ref.size() * sizeof(double)),
                0)
          << "relax_edges " << simd::arch_name(a) << " width " << width;
      got = init;
      k->relax_edges_delays(edges.data(), edges.size(), delays.data(),
                            got.data(), width);
      EXPECT_EQ(std::memcmp(ref_d.data(), got.data(),
                            ref_d.size() * sizeof(double)),
                0)
          << "relax_edges_delays " << simd::arch_name(a) << " width "
          << width;
    }
  }
}

// The table transform at the hard spots: the ±clamp_sigma table edges
// (everything a clamped draw can reach), points clamped below/above the
// range, and exact interval boundaries — bit-equal to eval_row on every
// compiled dispatch target, for every (corner, Vth) row.
TEST(SimdKernels, DrawTransformMatchesEvalRowAtEdges) {
  CharParams cp;
  const ExposureField field = ExposureField::scaled_65nm(cp);
  const VariationModel model(cp, field);
  const DelayFactorTables& tbl = model.delay_factor_tables();
  ASSERT_TRUE(tbl.built());
  const double lo = tbl.lo_nm();
  const double hi = tbl.hi_nm();
  const double range = hi - lo;
  const int intervals = tbl.intervals();

  // Clamp edges, out-of-range points, interval boundaries, interior.
  std::vector<double> points = {lo,
                                hi,
                                lo - 3.0,
                                hi + 3.0,
                                lo - 1e-9,
                                hi + 1e-9,
                                lo + 0.5 * range / intervals};
  for (const int k : {1, 2, intervals / 2, intervals - 1, intervals}) {
    points.push_back(lo + range * k / intervals);
  }
  Rng rng(0xab1eULL);
  for (int i = 0; i < 16; ++i) points.push_back(lo + range * rng.uniform());

  // eval_row_slope: value bitwise equal to eval_row everywhere; in the
  // clamped region below lo the segment is pinned to j = 0, so value and
  // slope are exactly row_coef[0] + row_coef[1] * (lg - lo) and
  // row_coef[1]; above hi the slope matches any other point of the last
  // segment.
  for (int r = 0; r < DelayFactorTables::kRows; ++r) {
    const double* rd = tbl.row_data(r);
    for (const double lg : points) {
      double slope = 0.0;
      const double v = tbl.eval_row(rd, lg);
      EXPECT_EQ(v, tbl.eval_row_slope(rd, lg, &slope));
      if (lg < lo) {
        EXPECT_EQ(v, rd[0] + rd[1] * (lg - lo));
        EXPECT_EQ(slope, rd[1]);
      }
    }
    double slope_above = 0.0, slope_last = 0.0;
    (void)tbl.eval_row_slope(rd, hi + 3.0, &slope_above);
    (void)tbl.eval_row_slope(rd, hi - 1e-6 * range, &slope_last);
    EXPECT_EQ(slope_above, slope_last);
  }

  // Batched: instances cycle rows x points; lane eps spread around zero
  // plus a lane pinned at exactly zero so the boundary points stay on
  // their boundaries in at least one lane.
  const std::size_t n = points.size() * DelayFactorTables::kRows;
  std::vector<std::int32_t> rows(n);
  std::vector<double> sys(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i] = static_cast<std::int32_t>(i % DelayFactorTables::kRows);
    sys[i] = points[i / DelayFactorTables::kRows];
  }
  ArchGuard guard;
  for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}, std::size_t{9}}) {
    AlignedVec<double> eps(width * n);
    for (std::size_t l = 0; l < width; ++l) {
      for (std::size_t i = 0; i < n; ++i) {
        eps[l * n + i] = l == 0 ? 0.0 : (rng.uniform() - 0.5) * range;
      }
    }
    std::vector<double> out(n * width);
    for (const simd::Arch a : simd::available_archs()) {
      ASSERT_TRUE(simd::set_arch(a));
      tbl.eval_rows_batch(rows.data(), sys.data(), eps.data(), n, width,
                          out.data());
      for (std::size_t i = 0; i < n; ++i) {
        const double* rd = tbl.row_data(rows[i]);
        for (std::size_t l = 0; l < width; ++l) {
          EXPECT_EQ(out[i * width + l],
                    tbl.eval_row(rd, sys[i] + eps[l * n + i]))
              << simd::arch_name(a) << " width " << width << " inst " << i
              << " lane " << l;
        }
      }
    }
  }
}

// The BatchedSimd normal stream: bit-identical across every dispatch
// target, prefix-stable, correct odd-tail and empty-span RNG
// consumption, and numerically faithful to the libm reference.
TEST(SimdKernels, NormalsSimdArchInvariant) {
  ArchGuard guard;
  const std::vector<simd::Arch> archs = simd::available_archs();
  std::vector<double> ref;
  for (const simd::Arch a : archs) {
    ASSERT_TRUE(simd::set_arch(a));
    Rng rng(0x5eedULL);
    std::vector<double> v(1001);  // odd: exercises the cos-only tail
    rng.normals_simd(v);
    if (ref.empty()) {
      ref = v;
    } else {
      EXPECT_EQ(std::memcmp(ref.data(), v.data(), v.size() * sizeof(double)),
                0)
          << simd::arch_name(a);
    }
    // Exactly two parent draws consumed regardless of length.
    Rng twin(0x5eedULL);
    twin.next();
    twin.next();
    EXPECT_EQ(rng.next(), twin.next()) << simd::arch_name(a);
  }
}

TEST(SimdKernels, NormalsSimdPrefixStableAndEmptyConsumes) {
  Rng a(0x11ULL), b(0x11ULL);
  std::vector<double> big(1001), small(257);
  a.normals_simd(big);
  b.normals_simd(small);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], big[i]) << i;
  }
  // An empty span still advances the two parent draws (so surrounding
  // draws stay aligned with Rng::normals' contract).
  Rng c(0x22ULL), d(0x22ULL);
  std::vector<double> none;
  c.normals_simd(none);
  d.next();
  d.next();
  EXPECT_EQ(c.next(), d.next());
}

TEST(SimdKernels, NormalsSimdMatchesLibmReferenceAndMoments) {
  Rng rng(0x77aaULL);
  const std::uint64_t key_r = Rng(0x77aaULL).next();
  const std::uint64_t key_t = [&] {
    Rng t(0x77aaULL);
    t.next();
    return t.next();
  }();
  constexpr std::size_t kN = 100000;
  std::vector<double> v(kN);
  rng.normals_simd(v);
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  double sum = 0.0, sum2 = 0.0, max_err = 0.0;
  for (std::size_t p = 0; p < kN / 2; ++p) {
    const double u1 =
        (static_cast<double>(Rng::counter_bits(key_r, p) >> 11) + 1.0) *
        0x1.0p-53;
    const double ang =
        kTwoPi *
        (static_cast<double>(Rng::counter_bits(key_t, p) >> 11) * 0x1.0p-53);
    const double rad = std::sqrt(-2.0 * std::log(u1));
    max_err = std::max(max_err, std::abs(v[2 * p] - rad * std::cos(ang)));
    max_err = std::max(max_err, std::abs(v[2 * p + 1] - rad * std::sin(ang)));
  }
  // Own vector log/sincos vs libm: a few ulps at |z| <= ~6.
  EXPECT_LT(max_err, 1e-11);
  for (const double z : v) {
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

// End-to-end: the BatchedSimd profile is invariant across dispatch
// targets, batch widths and thread counts, and pinning a target never
// perturbs the Batched profile (the relax/table kernels are transparent).
TEST(SimdMc, BatchedSimdProfileInvariance) {
  Library lib = make_st65lp_like();
  Design design = make_vex_design(lib, VexConfig::tiny());
  Floorplan fp = Floorplan::for_design(design, FloorplanConfig{});
  PlacementDb db(fp);
  place_design(design, fp, PlacerConfig{}, db);
  StaEngine sta(design, StaOptions{});
  sta.set_clock_period(sta.min_period() * 1.01);
  const ExposureField field = ExposureField::scaled_65nm(lib.char_params());
  const VariationModel model(lib.char_params(), field);
  const MonteCarloSsta mc(design, sta, model);
  const DieLocation loc = DieLocation::point('B');

  McConfig cfg;
  cfg.samples = 48;
  cfg.seed = 0xc0ffeeULL;
  cfg.profile = DrawProfile::BatchedSimd;
  cfg.batch = 8;

  const McResult ref = mc.run(loc, cfg);
  const auto same = [&](const McResult& r) {
    ASSERT_EQ(r.min_period_samples, ref.min_period_samples);
    ASSERT_EQ(r.endpoint_crit_prob, ref.endpoint_crit_prob);
    ASSERT_EQ(r.endpoint_stage_crit, ref.endpoint_stage_crit);
    for (std::size_t s = 0; s < ref.stages.size(); ++s) {
      ASSERT_EQ(r.stages[s].samples, ref.stages[s].samples) << s;
    }
  };

  McConfig wide = cfg;
  wide.batch = 16;
  same(mc.run(loc, wide));
  ThreadPool pool(2);
  same(mc.run(loc, cfg, &pool));

  McConfig batched = cfg;
  batched.profile = DrawProfile::Batched;
  const McResult batched_ref = mc.run(loc, batched);
  // BatchedSimd is a DIFFERENT stream than Batched by design.
  EXPECT_NE(ref.min_period_samples, batched_ref.min_period_samples);

  ArchGuard guard;
  for (const simd::Arch a : simd::available_archs()) {
    ASSERT_TRUE(simd::set_arch(a));
    same(mc.run(loc, cfg));
    const McResult b = mc.run(loc, batched);
    ASSERT_EQ(b.min_period_samples, batched_ref.min_period_samples)
        << "Batched profile not transparent on " << simd::arch_name(a);
  }
}

}  // namespace
}  // namespace vipvt
