// Tests for the deterministic PRNG: reproducibility, range contracts and
// first/second-moment sanity of the normal generator.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vipvt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.5, 1.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 1.5);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMoments) {
  Rng rng(1234);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(99);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal(65.0, 1.3));
  EXPECT_NEAR(rs.mean(), 65.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.3, 0.05);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng child = parent.fork();
  RunningStats diff;
  for (int i = 0; i < 1000; ++i) {
    diff.add(child.uniform() - parent.uniform());
  }
  // Not identical streams.
  EXPECT_GT(diff.stddev(), 0.1);
}

namespace {

// Pearson correlation of two equal-length sequences.
double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

std::vector<double> draw(Rng& rng, int n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = rng.uniform();
  return v;
}

}  // namespace

// Regression for the weak fork() derivation: a child seeded from a
// single parent draw XOR'd with a constant leaves parent/child and
// sibling/sibling streams correlated.  The reseed through the full
// splitmix64 expansion of two draws must keep every pairwise sample
// correlation at statistical-noise level (|r| ~ 1/sqrt(n)).
TEST(Rng, ForkStreamsStatisticallyIndependent) {
  constexpr int n = 4096;
  const double bound = 4.0 / std::sqrt(static_cast<double>(n));  // ~4 sigma

  Rng parent(0xfeedface);
  Rng child = parent.fork();
  auto child_seq = draw(child, n);
  auto parent_seq = draw(parent, n);
  EXPECT_LT(std::abs(correlation(parent_seq, child_seq)), bound);

  // Siblings forked in sequence (the per-MC-sample pattern).
  Rng p2(1);
  std::vector<std::vector<double>> sibs;
  for (int k = 0; k < 4; ++k) {
    Rng s = p2.fork();
    sibs.push_back(draw(s, n));
  }
  for (std::size_t i = 0; i < sibs.size(); ++i) {
    for (std::size_t j = i + 1; j < sibs.size(); ++j) {
      EXPECT_LT(std::abs(correlation(sibs[i], sibs[j])), bound)
          << "siblings " << i << "," << j;
    }
  }
}

TEST(Rng, ForkAdvancesParentByTwoDraws) {
  Rng a(7), b(7);
  (void)a.fork();
  b.next();
  b.next();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamSeedsDecorrelate) {
  // Consecutive batch indices — worst case for a weak mixer — must give
  // independent streams.
  constexpr int n = 4096;
  const double bound = 4.0 / std::sqrt(static_cast<double>(n));
  Rng s0(substream_seed(0x5eed, 0));
  Rng s1(substream_seed(0x5eed, 1));
  auto a = draw(s0, n);
  auto b = draw(s1, n);
  EXPECT_LT(std::abs(correlation(a, b)), bound);
}

TEST(Splitmix, KnownExpansion) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_EQ(s, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace vipvt
