// Tests for the deterministic PRNG: reproducibility, range contracts and
// first/second-moment sanity of the normal generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <set>
#include <vector>

#include "campaign/campaign.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vipvt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.5, 1.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 1.5);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMoments) {
  Rng rng(1234);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(99);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal(65.0, 1.3));
  EXPECT_NEAR(rs.mean(), 65.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.3, 0.05);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng child = parent.fork();
  RunningStats diff;
  for (int i = 0; i < 1000; ++i) {
    diff.add(child.uniform() - parent.uniform());
  }
  // Not identical streams.
  EXPECT_GT(diff.stddev(), 0.1);
}

namespace {

// Pearson correlation of two equal-length sequences.
double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

std::vector<double> draw(Rng& rng, int n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = rng.uniform();
  return v;
}

}  // namespace

// Regression for the weak fork() derivation: a child seeded from a
// single parent draw XOR'd with a constant leaves parent/child and
// sibling/sibling streams correlated.  The reseed through the full
// splitmix64 expansion of two draws must keep every pairwise sample
// correlation at statistical-noise level (|r| ~ 1/sqrt(n)).
TEST(Rng, ForkStreamsStatisticallyIndependent) {
  constexpr int n = 4096;
  const double bound = 4.0 / std::sqrt(static_cast<double>(n));  // ~4 sigma

  Rng parent(0xfeedface);
  Rng child = parent.fork();
  auto child_seq = draw(child, n);
  auto parent_seq = draw(parent, n);
  EXPECT_LT(std::abs(correlation(parent_seq, child_seq)), bound);

  // Siblings forked in sequence (the per-MC-sample pattern).
  Rng p2(1);
  std::vector<std::vector<double>> sibs;
  for (int k = 0; k < 4; ++k) {
    Rng s = p2.fork();
    sibs.push_back(draw(s, n));
  }
  for (std::size_t i = 0; i < sibs.size(); ++i) {
    for (std::size_t j = i + 1; j < sibs.size(); ++j) {
      EXPECT_LT(std::abs(correlation(sibs[i], sibs[j])), bound)
          << "siblings " << i << "," << j;
    }
  }
}

TEST(Rng, ForkAdvancesParentByTwoDraws) {
  Rng a(7), b(7);
  (void)a.fork();
  b.next();
  b.next();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamSeedsDecorrelate) {
  // Consecutive batch indices — worst case for a weak mixer — must give
  // independent streams.
  constexpr int n = 4096;
  const double bound = 4.0 / std::sqrt(static_cast<double>(n));
  Rng s0(substream_seed(0x5eed, 0));
  Rng s1(substream_seed(0x5eed, 1));
  auto a = draw(s0, n);
  auto b = draw(s1, n);
  EXPECT_LT(std::abs(correlation(a, b)), bound);
}

// ---- bulk normal generation (the batched draw profile's engine) ----------

TEST(RngNormals, Moments) {
  Rng rng(0xb0b);
  std::vector<double> z(100000);
  rng.normals(z);
  RunningStats rs;
  for (double x : z) rs.add(x);
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.02);
}

TEST(RngNormals, KolmogorovSmirnovAgainstStdNormal) {
  // One-sample KS test at alpha = 0.01: D_n < 1.63 / sqrt(n).  Catches a
  // broken transform (wrong tail, wrong scale) that moments alone miss.
  constexpr std::size_t n = 4096;
  Rng rng(0xd15ea5e);
  std::vector<double> z(n);
  rng.normals(z);
  std::sort(z.begin(), z.end());
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cdf = 0.5 * std::erfc(-z[i] / std::numbers::sqrt2);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(cdf - lo), std::abs(cdf - hi)});
  }
  EXPECT_LT(d, 1.63 / std::sqrt(static_cast<double>(n)));
}

TEST(RngNormals, DeterministicAndPrefixStable) {
  const auto fill = [](std::size_t n) {
    Rng rng(0xabcdef);
    std::vector<double> z(n);
    rng.normals(z);
    return z;
  };
  const std::vector<double> ref = fill(1000);
  EXPECT_EQ(ref, fill(1000));  // bit-identical rerun
  // normals(m) is a prefix of normals(n) for m <= n — including odd
  // lengths (which drop the second deviate of their last pair) and
  // lengths that straddle the vector-fill block boundary.
  for (std::size_t m : {1u, 2u, 7u, 127u, 255u, 256u, 257u, 999u}) {
    const std::vector<double> zm = fill(m);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(zm[i], ref[i]) << "prefix length " << m << " index " << i;
    }
  }
}

TEST(RngNormals, ConsumesExactlyTwoParentDraws) {
  // The draw count is independent of the fill size: the two next() calls
  // key the counter streams, the counters supply everything else.
  for (std::size_t n : {3u, 4096u}) {
    Rng a(7), b(7);
    std::vector<double> z(n);
    a.normals(z);
    b.next();
    b.next();
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(a.next(), b.next()) << "fill size " << n;
    }
  }
}

TEST(RngNormals, SubstreamsDecorrelate) {
  // Adjacent per-sample substreams — exactly how draw_factors_batch keys
  // its lanes — must be independent.
  constexpr std::size_t n = 4096;
  const double bound = 4.0 / std::sqrt(static_cast<double>(n));
  Rng s0(substream_seed(0x5eed, 0));
  Rng s1(substream_seed(0x5eed, 1));
  std::vector<double> a(n), b(n);
  s0.normals(a);
  s1.normals(b);
  EXPECT_LT(std::abs(correlation(a, b)), bound);
  // And the two counter streams WITHIN one fill must not correlate the
  // even/odd halves of a pair.
  std::vector<double> even(n / 2), odd(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    even[i] = a[2 * i];
    odd[i] = a[2 * i + 1];
  }
  EXPECT_LT(std::abs(correlation(even, odd)),
            4.0 / std::sqrt(static_cast<double>(n / 2)));
}

TEST(Splitmix, KnownExpansion) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_EQ(s, 2 * 0x9e3779b97f4a7c15ULL);
}

// ---- campaign substream tree (campaign/campaign.hpp) ----------------------

// The campaign layer nests substream_seed three levels deep:
// seed -> cell -> wafer -> die.  A collision anywhere in that tree would
// silently correlate two dies of the sweep, so check the REAL derivation
// (campaign_die_seed delegates to the same helpers run() uses) over a
// campaign-sized grid, then sanity-check the marginal uniformity of the
// derived streams with a chi-squared test.
TEST(CampaignSeeding, SubstreamTreeCollisionFree) {
  constexpr std::uint64_t kSeed = 0xca4fa167'5eed0001ULL;
  constexpr int kCells = 24, kWafers = 4, kDies = 64;
  std::set<std::uint64_t> seen;
  for (int c = 0; c < kCells; ++c) {
    for (int w = 0; w < kWafers; ++w) {
      for (int d = 0; d < kDies; ++d) {
        seen.insert(campaign_die_seed(kSeed, static_cast<std::uint64_t>(c),
                                      static_cast<std::uint64_t>(w),
                                      static_cast<std::uint64_t>(d)));
      }
    }
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kCells) * kWafers * kDies);
}

TEST(CampaignSeeding, DerivedStreamsPassChiSquaredUniformity) {
  // Pool the first draws of many (cell, wafer, die) streams; if the tree
  // mixed poorly (e.g. adjacent wafers landing in related states), the
  // bucket counts would skew far beyond chi-squared noise.
  constexpr int kBins = 16;
  constexpr int kStreams = 2048;
  std::array<int, kBins> count{};
  for (int s = 0; s < kStreams; ++s) {
    Rng rng(campaign_die_seed(0x5eed, static_cast<std::uint64_t>(s % 8),
                              static_cast<std::uint64_t>((s / 8) % 4),
                              static_cast<std::uint64_t>(s / 32)));
    const double u = rng.uniform();
    ++count[std::min(kBins - 1, static_cast<int>(u * kBins))];
  }
  const double expected = static_cast<double>(kStreams) / kBins;
  double stat = 0.0;
  for (const int c : count) {
    const double d = c - expected;
    stat += d * d / expected;
  }
  // p-value must not be vanishingly small (df = 15; 0.001 quantile ~ 37.7).
  EXPECT_GT(chi_squared_sf(stat, kBins - 1), 1e-3) << "chi2 = " << stat;
}

TEST(CampaignSeeding, CrossWaferDieStreamsUncorrelated) {
  // Same die id on two adjacent wafers of the same cell — the most
  // tempting aliasing pair in the tree — must be statistically
  // independent streams.
  constexpr int n = 4096;
  const double bound = 4.0 / std::sqrt(static_cast<double>(n));
  Rng w0(campaign_die_seed(0xab5eed, 3, 0, 17));
  Rng w1(campaign_die_seed(0xab5eed, 3, 1, 17));
  auto a = draw(w0, n);
  auto b = draw(w1, n);
  EXPECT_LT(std::abs(correlation(a, b)), bound);

  // And the same (wafer, die) across two cells.
  Rng c0(campaign_die_seed(0xab5eed, 0, 2, 5));
  Rng c1(campaign_die_seed(0xab5eed, 1, 2, 5));
  auto c = draw(c0, n);
  auto d = draw(c1, n);
  EXPECT_LT(std::abs(correlation(c, d)), bound);
}

}  // namespace
}  // namespace vipvt
