// Tests for the deterministic PRNG: reproducibility, range contracts and
// first/second-moment sanity of the normal generator.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vipvt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.5, 1.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 1.5);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMoments) {
  Rng rng(1234);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(99);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal(65.0, 1.3));
  EXPECT_NEAR(rs.mean(), 65.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.3, 0.05);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng child = parent.fork();
  RunningStats diff;
  for (int i = 0; i < 1000; ++i) {
    diff.add(child.uniform() - parent.uniform());
  }
  // Not identical streams.
  EXPECT_GT(diff.stddev(), 0.1);
}

TEST(Splitmix, KnownExpansion) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_EQ(s, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace vipvt
