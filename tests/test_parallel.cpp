// Thread-pool / parallel_for runtime tests.  This file is also the TSan
// smoke target in CI: every code path of util/parallel.hpp runs under
// real concurrency here, so a data race in the pool or in parallel_for
// chunk hand-out surfaces as a sanitizer report.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace vipvt {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, SubmitRunsJobs) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  pool.run_on_workers(8, [&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, RunOnWorkersPassesDistinctSlots) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(6);
  pool.run_on_workers(6, [&](unsigned slot) {
    ASSERT_LT(slot, 6u);
    hits[slot].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunOnWorkersRethrowsFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_on_workers(4,
                          [](unsigned slot) {
                            if (slot == 2) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> ran{0};
  pool.run_on_workers(3, [&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ParallelFor, EveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroAndOneItem) {
  ThreadPool pool(4);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  int count = 0;
  parallel_for(pool, 1, [&](std::size_t) { ++count; });  // inline path
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, StatefulMatchesSerial) {
  // Per-index results written into slots must be identical to a serial
  // run: the determinism contract the yield subsystem is built on.
  const auto run = [](ThreadPool& pool, std::size_t n) {
    std::vector<double> out(n);
    parallel_for(
        pool, n, [] { return Rng{}; },  // worker-local scratch RNG (unused
                                        // for results; results key on i)
        [&out](Rng&, std::size_t i) {
          Rng rng(substream_seed(0xabcdef, i));
          out[i] = rng.normal();
        });
    return out;
  };
  ThreadPool one(1), many(8);
  const auto a = run(one, 777);
  const auto b = run(many, 777);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, StateFactoryPerWorkerAtMost) {
  ThreadPool pool(4);
  std::atomic<int> states{0};
  parallel_for(
      pool, 64, [&] { states.fetch_add(1); return 0; },
      [](int&, std::size_t) {});
  EXPECT_GE(states.load(), 1);
  EXPECT_LE(states.load(), 4);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 50) throw std::logic_error("bad die");
                            }),
               std::logic_error);
}

TEST(ParallelFor, PoolIsReusableAcrossLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    parallel_for(pool, 100,
                 [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(SubstreamSeed, DistinctAndDeterministic) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(substream_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 10000u);  // no collisions among consecutive ids
  EXPECT_EQ(substream_seed(42, 7), substream_seed(42, 7));
  EXPECT_NE(substream_seed(42, 7), substream_seed(43, 7));
}

}  // namespace
}  // namespace vipvt
