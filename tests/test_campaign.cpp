// Campaign subsystem tests: sweep expansion, the partition-invariance
// contract (byte-identical campaign reports for any shard size and any
// thread count), NDJSON stream round-trips, and checkpoint/resume
// byte-identity — including recovery from a torn (killed mid-write)
// stream tail.  These are the tier-1 guards behind DESIGN.md §15.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "io/campaign_writers.hpp"
#include "io/ndjson.hpp"
#include "vi/flow.hpp"

namespace vipvt {
namespace {

FlowConfig tiny_flow_config() {
  FlowConfig cfg;
  cfg.vex = VexConfig::tiny();
  cfg.floorplan.target_utilization = 0.55;
  cfg.scenario.sweep_points = 6;
  cfg.scenario.mc.samples = 100;
  cfg.islands.mc_samples = 80;
  cfg.sim_cycles = 150;
  return cfg;
}

WaferConfig small_wafer() {
  WaferConfig wc;
  wc.wafer_diameter_mm = 70.0;  // a handful of dies: campaign tests
                                // multiply wafers by cells, keep each tiny
  return wc;
}

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.wafer_grids = {small_wafer()};
  spec.sigma_scales = {1.0, 1.2};
  spec.policies = {PolicyMix{"full", true, true},
                   PolicyMix{"no-escalation", false, true}};
  spec.mc_samples = {6};
  spec.wafers_per_cell = 2;
  spec.shard_dies = 3;
  spec.seed = 0xc0ffee01;
  spec.base.mc.samples = 6;
  spec.base.speed_bins = 4;
  return spec;
}

class CampaignFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow_ = new Flow(tiny_flow_config());
    flow_->simulate_activity();
    runner_ = new CampaignRunner;
    runner_->add_variant("tiny", *flow_);
  }
  static void TearDownTestSuite() {
    delete runner_;
    delete flow_;
    runner_ = nullptr;
    flow_ = nullptr;
  }
  static Flow* flow_;
  static CampaignRunner* runner_;
};
Flow* CampaignFixture::flow_ = nullptr;
CampaignRunner* CampaignFixture::runner_ = nullptr;

std::string report_bytes(const CampaignReport& report) {
  std::ostringstream os;
  write_campaign_json(os, report);
  return os.str();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string agg_bytes(const YieldAggregate& agg) {
  ShardRecord r;
  r.agg = agg;
  return serialize_shard_record(r);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// ---- expansion ------------------------------------------------------------

TEST_F(CampaignFixture, ExpandBuildsDenseCartesianGrid) {
  CampaignSpec spec = tiny_spec();
  spec.mc_samples = {6, 12};
  const std::vector<CampaignCell> cells = runner_->expand(spec);
  // 1 variant x 1 grid x 2 sigma x 2 policies x 2 budgets.
  ASSERT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<std::uint32_t>(i));
  }
  // mc_samples is the innermost axis, policy next.
  EXPECT_EQ(cells[0].config.mc.samples, 6);
  EXPECT_EQ(cells[1].config.mc.samples, 12);
  EXPECT_TRUE(cells[0].config.allow_escalation);
  EXPECT_FALSE(cells[2].config.allow_escalation);
  EXPECT_EQ(cells[4].sigma, 1u);
}

TEST_F(CampaignFixture, ExpandValidatesSpec) {
  CampaignSpec spec = tiny_spec();
  spec.policies.clear();
  EXPECT_THROW(runner_->expand(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.variants = {"no-such-variant"};
  EXPECT_THROW(runner_->expand(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.shard_dies = 0;
  EXPECT_THROW(runner_->expand(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.sigma_scales = {-1.0};
  EXPECT_THROW(runner_->expand(spec), std::invalid_argument);
}

TEST_F(CampaignFixture, NumJobsCountsWaferShards) {
  const CampaignSpec spec = tiny_spec();
  const std::size_t dies = WaferModel(small_wafer()).num_dies();
  ASSERT_GT(dies, 0u);
  const std::size_t shards =
      (dies + static_cast<std::size_t>(spec.shard_dies) - 1) /
      static_cast<std::size_t>(spec.shard_dies);
  EXPECT_EQ(runner_->num_jobs(spec),
            4u * static_cast<std::size_t>(spec.wafers_per_cell) * shards);
}

// ---- the determinism contract ---------------------------------------------

TEST_F(CampaignFixture, ReportBytesInvariantAcrossShardSizeAndThreads) {
  CampaignSpec spec = tiny_spec();
  spec.wafers_per_cell = 1;  // smallest spec that still exercises 4 cells
  const std::string baseline = report_bytes(runner_->run(spec));

  ThreadPool pool2(2), pool4(4);
  for (const int shard : {1, 3, 7}) {
    spec.shard_dies = shard;
    CampaignRunOptions opts;
    opts.pool = &pool2;
    EXPECT_EQ(report_bytes(runner_->run(spec, opts)), baseline)
        << "shard_dies=" << shard << " threads=2";
  }
  spec.shard_dies = 2;
  CampaignRunOptions opts4;
  opts4.pool = &pool4;
  EXPECT_EQ(report_bytes(runner_->run(spec, opts4)), baseline)
      << "shard_dies=2 threads=4";
}

/// Macro-tier campaigns (DESIGN.md §19): the per-cell screen comes from
/// the analyzer slot's cached macromodel library, macro tallies flow
/// into the cell aggregates, and the report stays byte-invariant across
/// shard sizes and thread counts.  The spec digest covers the tier
/// selector and the macromodel knobs, so checkpoints can't cross tiers.
TEST_F(CampaignFixture, MacroTierCampaignIsShardInvariantAndDigested) {
  CampaignSpec spec = tiny_spec();
  spec.wafers_per_cell = 1;
  spec.sigma_scales = {1.0};
  spec.policies = {PolicyMix{"full", true, true}};
  spec.base.tier = EvalTier::Macro;

  CampaignSpec flat = spec;
  flat.base.tier = EvalTier::Flat;
  EXPECT_NE(runner_->spec_digest(spec), runner_->spec_digest(flat));
  CampaignSpec knots = spec;
  knots.base.macro.knots = 5;
  EXPECT_NE(runner_->spec_digest(spec), runner_->spec_digest(knots));

  const CampaignReport whole = runner_->run(spec);
  std::uint64_t macro_decided = 0;
  for (const CellResult& cell : whole.cells) {
    macro_decided += cell.agg.triage_macro;
    EXPECT_EQ(cell.agg.triage_macro + cell.agg.triage_mc_fallback,
              cell.agg.dies);
  }
  EXPECT_GT(macro_decided, 0u);

  const std::string baseline = report_bytes(whole);
  ThreadPool pool(3);
  for (const int shard : {2, 5}) {
    spec.shard_dies = shard;
    CampaignRunOptions opts;
    opts.pool = &pool;
    EXPECT_EQ(report_bytes(runner_->run(spec, opts)), baseline)
        << "shard_dies=" << shard;
  }
}

TEST_F(CampaignFixture, ShardPartitionMergeMatchesSinglePass) {
  // Merging per-shard aggregates of ANY partition must reproduce the
  // one-shot aggregate bit-for-bit (compared through the exact
  // checkpoint serialization, which captures the full reducer state).
  const CampaignSpec spec = tiny_spec();
  CampaignSpec one = spec;
  one.wafers_per_cell = 1;
  one.sigma_scales = {1.0};
  one.policies = {spec.policies[0]};

  CampaignRunOptions opts;
  const CampaignReport whole = runner_->run(one, opts);
  ASSERT_EQ(whole.cells.size(), 1u);

  for (const int shard : {1, 2, 5}) {
    CampaignSpec sharded = one;
    sharded.shard_dies = shard;
    const CampaignReport part = runner_->run(sharded, opts);
    ASSERT_EQ(part.cells.size(), 1u);
    EXPECT_EQ(agg_bytes(part.cells[0].agg), agg_bytes(whole.cells[0].agg))
        << "shard_dies=" << shard;
  }
}

TEST_F(CampaignFixture, OnRecordStreamsInJobOrder) {
  CampaignSpec spec = tiny_spec();
  spec.wafers_per_cell = 1;
  spec.sigma_scales = {1.0};
  ThreadPool pool(4);
  std::vector<std::uint64_t> jobs;
  CampaignRunOptions opts;
  opts.pool = &pool;
  opts.on_record = [&jobs](const std::string& line) {
    std::uint64_t j = ~0ULL;
    ASSERT_TRUE(ndjson_find_u64(line, "job", j));
    jobs.push_back(j);
  };
  CampaignRunStats stats;
  opts.stats = &stats;
  const CampaignReport report = runner_->run(spec, opts);
  ASSERT_EQ(jobs.size(), report.jobs_total);
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i], i);
  EXPECT_EQ(stats.records_emitted, jobs.size());
  EXPECT_GE(stats.peak_pending_shards, 1u);
}

// ---- streaming + checkpoint/resume ----------------------------------------

TEST_F(CampaignFixture, ResumedCampaignIsByteIdenticalToUninterrupted) {
  CampaignSpec spec = tiny_spec();
  spec.wafers_per_cell = 1;
  const std::string full_path = temp_path("campaign_full.ndjson");
  const std::string cut_path = temp_path("campaign_cut.ndjson");

  CampaignRunOptions opts;
  opts.stream_path = full_path;
  const CampaignReport uninterrupted = runner_->run(spec, opts);
  EXPECT_TRUE(uninterrupted.complete());

  // "Kill" mid-campaign, then resume on a pool (the resumed half may run
  // on any schedule — bytes must not care).
  CampaignRunOptions cut;
  cut.stream_path = cut_path;
  cut.stop_after_jobs = uninterrupted.jobs_total / 2;
  CampaignRunStats cut_stats;
  cut.stats = &cut_stats;
  const CampaignReport partial = runner_->run(spec, cut);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.jobs_done, uninterrupted.jobs_total / 2);
  EXPECT_EQ(cut_stats.jobs_run, uninterrupted.jobs_total / 2);

  ThreadPool pool(2);
  CampaignRunOptions resume;
  resume.stream_path = cut_path;
  resume.resume = true;
  resume.pool = &pool;
  CampaignRunStats resume_stats;
  resume.stats = &resume_stats;
  const CampaignReport resumed = runner_->run(spec, resume);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resume_stats.jobs_resumed, uninterrupted.jobs_total / 2);

  EXPECT_EQ(report_bytes(resumed), report_bytes(uninterrupted));
  EXPECT_EQ(file_bytes(cut_path), file_bytes(full_path));
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST_F(CampaignFixture, ResumeRecoversFromTornTail) {
  CampaignSpec spec = tiny_spec();
  spec.wafers_per_cell = 1;
  spec.sigma_scales = {1.0};
  const std::string path = temp_path("campaign_torn.ndjson");

  CampaignRunOptions opts;
  opts.stream_path = path;
  const CampaignReport reference = runner_->run(spec, opts);
  const std::string intact = file_bytes(path);

  // Chop into the middle of the last record: a kill mid-write.
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << intact.substr(0, intact.size() - 25);
  }
  const LoadedCampaignStream loaded = load_campaign_stream(path);
  EXPECT_LT(loaded.records.size(), reference.jobs_total);
  EXPECT_FALSE(loaded.trailer_seen);

  CampaignRunOptions resume;
  resume.stream_path = path;
  resume.resume = true;
  const CampaignReport resumed = runner_->run(spec, resume);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(report_bytes(resumed), report_bytes(reference));
  EXPECT_EQ(file_bytes(path), intact);
  std::remove(path.c_str());
}

TEST_F(CampaignFixture, ResumeRejectsMismatchedSpec) {
  CampaignSpec spec = tiny_spec();
  spec.wafers_per_cell = 1;
  spec.sigma_scales = {1.0};
  spec.policies = {PolicyMix{"full", true, true}};
  const std::string path = temp_path("campaign_mismatch.ndjson");

  CampaignRunOptions opts;
  opts.stream_path = path;
  opts.stop_after_jobs = 1;
  (void)runner_->run(spec, opts);

  CampaignSpec other = spec;
  other.seed ^= 1;
  CampaignRunOptions resume;
  resume.stream_path = path;
  resume.resume = true;
  EXPECT_THROW(runner_->run(other, resume), std::runtime_error);
  std::remove(path.c_str());
}

// ---- record round-trip ----------------------------------------------------

TEST(CampaignCheckpoint, ShardRecordRoundTripsBitExactly) {
  ShardRecord r;
  r.job = 41;
  r.cell = 7;
  r.wafer = 3;
  r.die_begin = 12;
  r.die_end = 19;
  r.agg.dies = 7;
  r.agg.policy_count = {2, 3, 1, 1};
  r.agg.island_activation = {2, 1, 2};
  r.agg.timing_met = 6;
  r.agg.escalated = 1;
  r.agg.missed_violation = 0;
  r.agg.mc_severity_sum = 9;
  r.agg.mc_samples_drawn = 42;
  r.agg.mc_samples_budget = 56;
  r.agg.mc_converged_dies = 5;
  for (const double v : {1.25, -0.32768111111, 3.0009765625, 1e-7}) {
    r.agg.fmax_ghz.add(v + 1.0);
    r.agg.wns_all_low_ns.add(-v);
    r.agg.wns_final_ns.add(v * 0.5);
    r.agg.power_mw[1].add(100.0 * v);
    r.agg.leakage_mw[2].add(0.125 * v);
  }

  const std::string line = serialize_shard_record(r);
  ShardRecord back;
  ASSERT_TRUE(parse_shard_record(line, back));
  EXPECT_EQ(back.job, r.job);
  EXPECT_EQ(back.cell, r.cell);
  EXPECT_EQ(back.wafer, r.wafer);
  EXPECT_EQ(back.die_begin, r.die_begin);
  EXPECT_EQ(back.die_end, r.die_end);
  EXPECT_EQ(back.agg.dies, r.agg.dies);
  EXPECT_EQ(back.agg.policy_count, r.agg.policy_count);
  EXPECT_EQ(back.agg.island_activation, r.agg.island_activation);
  EXPECT_EQ(back.agg.mc_samples_drawn, r.agg.mc_samples_drawn);
  // ExactMoments equality is state equality: bit-for-bit round-trip.
  EXPECT_EQ(back.agg.fmax_ghz, r.agg.fmax_ghz);
  EXPECT_EQ(back.agg.wns_all_low_ns, r.agg.wns_all_low_ns);
  EXPECT_EQ(back.agg.wns_final_ns, r.agg.wns_final_ns);
  for (int p = 0; p < kNumTuningPolicies; ++p) {
    EXPECT_EQ(back.agg.power_mw[static_cast<std::size_t>(p)],
              r.agg.power_mw[static_cast<std::size_t>(p)]);
    EXPECT_EQ(back.agg.leakage_mw[static_cast<std::size_t>(p)],
              r.agg.leakage_mw[static_cast<std::size_t>(p)]);
  }
  // And the re-serialization is byte-identical (stream determinism).
  EXPECT_EQ(serialize_shard_record(back), line);
}

TEST(CampaignSeeding, DieSeedMatchesWaferPathDerivation) {
  // The campaign hands analyze_shard a cfg whose seed is the wafer seed;
  // the die path then derives substream_seed(cfg.seed, die_id).  The
  // exposed helper must agree with that composition exactly.
  const std::uint64_t seed = 0xfeedface;
  EXPECT_EQ(campaign_die_seed(seed, 5, 2, 17),
            substream_seed(campaign_wafer_seed(seed, 5, 2), 17));
  EXPECT_NE(campaign_die_seed(seed, 5, 2, 17), campaign_die_seed(seed, 5, 3, 17));
  EXPECT_NE(campaign_die_seed(seed, 5, 2, 17), campaign_die_seed(seed, 6, 2, 17));
}

}  // namespace
}  // namespace vipvt
